"""Sampled simulation: functional fast-forward, microarchitectural
warming, content-addressed warmed-state snapshots, and multi-region
sample plans.

The paper's own methodology (§6) never simulates its multi-billion-
instruction runs in full detail — it fast-forwards to the regions it
measures. This module is that layer for our simulator, in four parts:

* :func:`fast_forward` — execute a workload's warmup prefix purely
  *functionally* on the interpreter tier, optionally with **functional
  warming**: every load/store touches a
  :class:`~repro.uarch.cache.DataHierarchy` (with the stream
  prefetcher attached) and every branch trains the
  :class:`~repro.uarch.branch.frontend_predictor.FrontEndPredictor`'s
  component tables directly with the resolved outcome — state updates
  only, no timing — so the detailed region starts with realistic cache
  and predictor contents instead of a cold machine. A prefix can
  *resume* from an earlier snapshot (``resume_from``); resumed and
  straight-through warmups produce byte-identical warm images (the
  split-vs-straight differential in ``tests/harness/test_sampled.py``
  pins this down), which is what makes snapshot chains sound.
* :class:`Snapshot` / :class:`SnapshotStore` — the resulting
  architectural state (registers, PC, full memory image) plus the
  warmed cache/predictor/prefetcher images, persisted under
  ``.repro_cache/snapshots/`` with the same checksummed-payload /
  corrupt-quarantine discipline as the run cache
  (:mod:`repro.harness.blobstore`), keyed by
  ``(workload, scale, ff_insts, warming config, src hash)``.
* :class:`SamplePlan` / :func:`build_sample_plan` — SMARTS-style
  periodic sampling: N detailed measurement windows (each preceded by
  a detailed-warming discard prefix) spread over the workload's
  region, with functional fast-forward covering everything between
  windows. Each window's prefix depth names one member of a **snapshot
  chain**.
* :func:`ensure_snapshot` / :func:`iter_chain` /
  :func:`prebuild_snapshots` — build-once / share-everywhere:
  ``run_matrix`` pre-builds each distinct snapshot (or chain) a matrix
  needs before fanning out, so a machine-parameter sweep pays the
  architectural prefix exactly once. Chain member *k+1* is built
  incrementally by resuming from member *k*, never by re-running from
  the entry point, so a 10-region plan costs one pass over the
  program. The warming key digests only the sub-configs that shape
  warmed state (L1D/L2 geometry, prefetch, branch predictor budgets) —
  varying ``memory_latency``, ``window_entries``, or slice hardware
  across sweep points reuses the identical chain.

**Accuracy model.** Functional warming is architectural: it sees no
wrong-path accesses, no timing-dependent prefetch arrivals, and no
helper threads (FORK is architecturally a no-op). The detailed-warming
*discard window* (:func:`sample_plan`) absorbs that residue: the first
``sample // 10`` committed instructions (capped at
:data:`DETAIL_WARMUP_CAP`) run in full detail but are discarded at the
warmup boundary, so in-flight timing, stream-prefetcher state, and the
slice correlator re-converge before measurement starts. Accuracy
bounds vs. full-detail IPC are enforced by
``benchmarks/bench_sampled.py`` (single-region < 2% deviation;
multi-region within the sampled 95% CI) and the differential suite
(``tests/harness/test_sampled.py``) proves fast-forward = 0 is
bit-identical to a full detailed run.
"""

from __future__ import annotations

import dataclasses
import gc
import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field

from repro.arch.exceptions import Fault
from repro.arch.interpreter import _compile, run_functional
from repro.arch.memory import Memory
from repro.arch.state import ThreadState
from repro.errors import CacheCorruptionError
from repro.harness.blobstore import CORRUPT_SUBDIR, IntegrityStore
from repro.harness.cache import DEFAULT_CACHE_DIR, source_tree_hash
from repro.isa.opcodes import INSTRUCTION_BYTES, Opcode
from repro.uarch.branch.frontend_predictor import FrontEndPredictor
from repro.uarch.cache import DataHierarchy
from repro.uarch.config import MachineConfig
from repro.uarch.prefetch import StreamPrefetcher, build_warm_access
from repro.uarch.warmfuse import (
    WarmContext,
    compile_warm_run,
    warm_block_table,
)
from repro.workloads.base import Workload

#: Bump when the snapshot payload layout changes; old snapshots become
#: misses instead of unpickling into the wrong shape. v2: warming runs
#: the dedicated direct-update loop (resumable, prefetcher image,
#: chain parentage) instead of the predict/restore/replay protocol.
#: v3: build provenance (``built_by`` / ``resumed_from_depth``).
SNAPSHOT_SCHEMA_VERSION = 3

_SNAP_MAGIC = b"repro-snap-%d\n" % SNAPSHOT_SCHEMA_VERSION

#: Subdirectory of the cache root holding the snapshot store.
SNAPSHOT_SUBDIR = "snapshots"

#: Detailed-warming discard window for a sampled run: the first
#: ``sample // DETAIL_WARMUP_FRACTION`` committed instructions (capped
#: at DETAIL_WARMUP_CAP) run in full detail but are discarded at the
#: warmup boundary, letting timing state the functional warming cannot
#: produce (in-flight fills, stream prefetcher, slice correlator)
#: converge before measurement begins.
DETAIL_WARMUP_FRACTION = 10
DETAIL_WARMUP_CAP = 2_000


def sample_plan(sample: int) -> tuple[int | None, int]:
    """Map a request's ``sample`` field to ``(region, warmup)``.

    ``sample <= 0`` means no sampling: the workload's own region, no
    discard window — the legacy (bit-identical) path. Otherwise the
    measured region is exactly *sample* committed instructions,
    preceded by the detailed-warming discard window.
    """
    if sample <= 0:
        return None, 0
    return sample, min(sample // DETAIL_WARMUP_FRACTION, DETAIL_WARMUP_CAP)


@dataclass(frozen=True)
class SamplePlan:
    """Placement of N periodic detailed windows over a long run.

    Window *k* fast-forwards ``depths[k]`` instructions functionally
    (with warming), then runs ``warmup`` detailed-but-discarded
    instructions, then measures ``sample`` instructions in full
    detail. ``depths`` is strictly increasing with step ``period``;
    the region between two windows is covered by functional warming
    only. ``depths[0] == 0`` means the first window starts cold at the
    entry point (no snapshot needed).
    """

    regions: int
    sample: int
    warmup: int
    period: int
    depths: tuple[int, ...]

    @property
    def window(self) -> int:
        """Detailed instructions per region (discard + measured)."""
        return self.warmup + self.sample


def build_sample_plan(
    total_region: int,
    fast_forward: int,
    sample: int,
    regions: int,
    period: int = 0,
) -> SamplePlan:
    """Schedule *regions* periodic windows over *total_region*.

    *total_region* is the horizon a full-detail run of this workload
    would measure (``workload.region``); windows are spread uniformly
    over ``[fast_forward, total_region)``. When *period* is 0 it is
    derived as ``(total_region - fast_forward) // regions`` (clamped so
    windows never overlap); an explicit period overrides the spread but
    is clamped the same way.
    """
    if regions < 2:
        raise ValueError(
            f"multi-region plans need >= 2 regions, got {regions} "
            "(use sample_plan for single-region sampling)"
        )
    if sample <= 0:
        raise ValueError("multi-region sampling requires sample > 0")
    _, warmup = sample_plan(sample)
    window = warmup + sample
    if period <= 0:
        span = max(total_region - fast_forward, regions * window)
        period = span // regions
    period = max(period, window)
    depths = tuple(fast_forward + k * period for k in range(regions))
    return SamplePlan(
        regions=regions,
        sample=sample,
        warmup=warmup,
        period=period,
        depths=depths,
    )


@dataclass
class Snapshot:
    """Architectural state + warmed microarchitectural images at one
    point of a workload's execution. Fully picklable; deterministic
    given (workload, scale, ff_insts, warming config, source tree)."""

    workload: str
    scale: float
    #: Instructions requested / actually executed (they differ only
    #: when the prefix ran off the program or hit HALT early).
    ff_insts: int
    executed: int
    pc: int
    halted: bool
    #: All 32 architectural register values, in index order.
    regs: list[int]
    #: Full sparse memory image (word-aligned address -> signed value).
    memory_words: dict[int, int]
    #: True when the prefix ran with functional warming.
    warming: bool
    #: Digest of the warming-relevant machine sub-configs this
    #: snapshot's images were built for (see :func:`warm_config_key`).
    warm_config: str | None = None
    #: ``DataHierarchy.warm_image()`` (L1/L2 sets, prefetch/victim
    #: buffer), ``FrontEndPredictor.warm_image()``, and
    #: ``StreamPrefetcher.warm_image()`` payloads, or ``None`` when
    #: warming was off.
    hierarchy_image: dict | None = field(default=None, repr=False)
    predictor_image: tuple | None = field(default=None, repr=False)
    prefetcher_image: list | None = field(default=None, repr=False)
    #: Fingerprint of the chain member this snapshot was resumed from
    #: (None for a straight-through build or a chain head). Provenance
    #: only — excluded from :func:`snapshot_digest`, because a chained
    #: build and a straight-through build of the same depth are
    #: byte-identical in every payload that matters.
    parent: str | None = None
    #: Build provenance: which prebuild discipline produced this member
    #: (``"serial"`` / ``"parallel"``), and the absolute depth of the
    #: stored member the building pass resumed from (``None`` when the
    #: pass started at the entry point). Like ``parent``, provenance is
    #: masked out of :func:`snapshot_digest` — parallel and serial
    #: builds of the same depth must digest identically (CI asserts
    #: exactly that).
    built_by: str | None = None
    resumed_from_depth: int | None = None


def warm_config_key(config: MachineConfig) -> str:
    """Digest of the sub-configs that shape warmed state.

    Only cache geometry, the prefetcher, and predictor budgets matter
    to a warm image; ``memory_latency``, window size, core width, and
    slice hardware do not (warming is untimed and slice-free). Keying
    on exactly this set is what lets every point of a machine-parameter
    sweep share one snapshot chain.
    """
    payload = {
        "l1d": dataclasses.asdict(config.l1d),
        "l2": dataclasses.asdict(config.l2),
        "prefetch": dataclasses.asdict(config.prefetch),
        "branch": dataclasses.asdict(config.branch),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def snapshot_fingerprint(
    workload: str,
    scale: float,
    ff_insts: int,
    config: MachineConfig,
    warming: bool = True,
    source_hash: str | None = None,
) -> str:
    """Content-addressed key for one snapshot.

    A chain member at depth *d* gets the same key a straight-through
    build of depth *d* would — chains add no key dimension, so any
    request whose prefix lands on *d* shares the stored member.
    """
    payload = {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "source": source_hash if source_hash is not None else source_tree_hash(),
        "workload": workload,
        "scale": scale,
        "ff_insts": ff_insts,
        "warming": warming,
        "warm_config": warm_config_key(config) if warming else None,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def snapshot_digest(snapshot: Snapshot) -> str:
    """Hex SHA-256 of the snapshot's serialized payload.

    The simulator and the workload generators are deterministic, so the
    same request must produce byte-identical snapshots — CI asserts
    this (snapshot-determinism step). ``parent``, ``built_by``, and
    ``resumed_from_depth`` are provenance, not state, and are masked
    out so a chained build digests identically to a straight-through
    build of the same depth (and a parallel prebuild to a serial one).
    """
    if (
        snapshot.parent is not None
        or snapshot.built_by is not None
        or snapshot.resumed_from_depth is not None
    ):
        snapshot = dataclasses.replace(
            snapshot, parent=None, built_by=None, resumed_from_depth=None
        )
    return hashlib.sha256(_encode(snapshot)).hexdigest()


def chain_digest(digests: list[str] | tuple[str, ...]) -> str:
    """Digest of a whole chain: SHA-256 over its members' digests in
    depth order. CI's chained-determinism step compares this across
    two independent builds."""
    joined = "\n".join(digests).encode()
    return hashlib.sha256(joined).hexdigest()


def _encode(snapshot: Snapshot) -> bytes:
    return pickle.dumps(
        {"snapshot": snapshot}, protocol=pickle.HIGHEST_PROTOCOL
    )


# ----------------------------------------------------------------------
# Layer 1: the functional fast-forward tier
# ----------------------------------------------------------------------


def _cold_loop(program, state, budget: int) -> tuple[int, bool]:
    """Plain functional execution (no warming): ``(executed, halted)``."""
    executed = 0
    for _inst, result in run_functional(program, state, budget):
        executed += 1
        if result.fault is Fault.HALT:
            return executed, True
    return executed, False


def _warm_steps(
    program,
    state,
    budget: int,
    hierarchy: DataHierarchy,
    predictor: FrontEndPredictor,
) -> tuple[int, bool]:
    """Per-instruction functional execution with direct warming.

    The precise-budget tier of warming: dispatches the interpreter's
    cached executor closures directly (no generator frame per
    instruction) and trains the predictor components with their
    resolved outcomes instead of running the full
    predict/restore/replay/train protocol. The two are state-
    equivalent: ``YagsPredictor.update`` and
    ``CascadingIndirectPredictor.update`` take the pre-branch history
    as an argument (never reading live history), a correctly-predicted
    and a mispredicted-then-replayed branch leave the same net
    history/RAS effect, and the prediction-side stat counters are
    simply never touched (they are zero in every warm image either
    way).

    Most warm instructions run on the fused tier
    (:mod:`repro.uarch.warmfuse`) instead; this loop covers the tail
    of a budget that ends mid-run. The two tiers are state-identical
    per instruction — the split-vs-straight warm-image differential
    exercises exactly that boundary.
    """
    program_at = program.at
    warm_access = hierarchy.warm_access
    direction = predictor.direction
    indirect = predictor.indirect
    ras = predictor.ras
    dir_update = direction.update
    dir_shift = direction.shift_history
    ind_update = indirect.update
    ind_shift = indirect.shift_history
    ras_push = ras.push
    ras_pop = ras.predict_and_pop
    halt = Fault.HALT
    null_deref = Fault.NULL_DEREF
    op_call = Opcode.CALL
    op_ret = Opcode.RET
    op_br = Opcode.BR
    op_callr = Opcode.CALLR

    executed = 0
    while executed < budget:
        inst = program_at(state.pc)
        if inst is None:
            break
        fn = inst._exec
        if fn is None:
            fn = inst._exec = _compile(inst)
        result = fn(state)
        executed += 1
        if inst.is_mem:
            addr = result.addr
            if addr is not None and result.fault is not null_deref:
                warm_access(addr, inst.is_store)
        elif inst.is_branch:
            if inst.is_conditional:
                taken = result.taken
                dir_update(inst.pc, taken, direction.history)
                dir_shift(taken)
            else:
                op = inst.op
                if op is op_call:
                    ras_push(inst.pc + INSTRUCTION_BYTES)
                elif op is op_ret:
                    ras_pop()
                elif op is not op_br:  # JR / CALLR
                    target = result.next_pc
                    ind_update(inst.pc, target, indirect.path_history)
                    ind_shift(target)
                    if op is op_callr:
                        ras_push(inst.pc + INSTRUCTION_BYTES)
        if result.fault is halt:
            return executed, True
    return executed, False


def _warm_loop(
    program,
    state,
    budget: int,
    hierarchy: DataHierarchy,
    predictor: FrontEndPredictor,
) -> tuple[int, bool]:
    """Trace-fused functional warming: ``(executed, halted)``.

    Drives :mod:`repro.uarch.warmfuse`: whole traces — straight-line
    runs extended across statically-targeted branches, so hot loops
    unroll — execute as one generated function each, with warm updates
    inlined. Each call reports the instructions it actually ran in
    ``ctx.xc[0]`` (a trace exits early when a branch leaves the
    compiled path). Falls back to :func:`_warm_steps` for the tail of
    the budget, when fewer instructions remain than the next trace
    *could* execute. Both tiers leave identical state per instruction,
    so where the budget falls relative to trace boundaries is
    unobservable in the resulting snapshot — which is what makes
    chained (split) and straight-through warmups byte-identical.
    """
    # The generated runs elide the undo journal; fast-forward state is
    # built with journaling off, which makes that an exact elision.
    assert not state.regs.journaling and not state.memory.journaling
    l1 = hierarchy.l1
    table = warm_block_table(program, l1._line_shift, l1._set_mask)
    compile_run = compile_warm_run
    ctx = WarmContext(state, hierarchy, predictor)
    # Compiled runs are cached program-wide; the zero-argument closures
    # they produce are bound to *this* pass's context once per run here
    # (contexts go stale across warm-image loads, which replace the
    # predictor component objects).
    bound: dict[int, tuple] = {}
    bound_get = bound.get
    xc = ctx.xc
    pc = state.pc
    executed = 0
    halted = False
    remaining = budget
    table_get = table.get
    _missing = ()
    # The warm loop allocates only acyclic objects (ints, tuples,
    # small lists), so cycle collection buys nothing here while its
    # periodic gen-0 scans tax every predictor-table tuple; pause it
    # for the duration and let refcounting do the work.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        while remaining > 0:
            entry = bound_get(pc)
            if entry is None:
                compiled = table_get(pc, _missing)
                if compiled is _missing:
                    compiled = table[pc] = compile_run(
                        program, pc, l1._line_shift, l1._set_mask
                    )
                if compiled is None:
                    break  # off-program PC: stop as run_functional does
                bind, length, halt_pc = compiled
                entry = bound[pc] = (bind(ctx), length, halt_pc)
            fn, length, halt_pc = entry
            if length > remaining:
                # ``length`` is the trace's *maximum*; it may exit
                # earlier, but the conservative check keeps the budget
                # exact.
                state.pc = pc
                ran, halted = _warm_steps(
                    program, state, remaining, hierarchy, predictor
                )
                executed += ran
                remaining -= ran
                pc = state.pc
                break
            nxt = fn()
            ran = xc[0]
            executed += ran
            remaining -= ran
            if nxt is None:
                pc = halt_pc
                halted = True
                break
            pc = nxt
    finally:
        if gc_was_enabled:
            gc.enable()
    state.pc = pc
    return executed, halted


class _LiveRun:
    """Live functional-warming execution state.

    Set up once (from scratch or from a resume snapshot), advanced to
    successive absolute depths, and captured at each. A chain build
    threads one of these down the whole plan, so each emitted member
    costs one set of state copies (the capture) instead of two (a
    resume copy *and* a capture copy per member) — at benchmark scales
    a member's memory image alone is millions of words.
    """

    def __init__(
        self,
        workload: Workload,
        config: MachineConfig,
        warming: bool,
        resume_from: Snapshot | None = None,
    ):
        self.workload = workload
        self.config = config
        self.warming = warming
        self.program = workload.program
        if resume_from is not None:
            self.memory = Memory(
                resume_from.memory_words, journaling=False, normalized=True
            )
            self.state = ThreadState(
                self.memory, entry_pc=resume_from.pc, journaling=False
            )
            self.state.regs.load_values(dict(enumerate(resume_from.regs)))
            self.executed = resume_from.executed
            self.halted = resume_from.halted
        else:
            # Workload images are normalized at build time (Workload
            # __post_init__), so this is a plain dict copy.
            self.memory = Memory(
                workload.memory_image, journaling=False, normalized=True
            )
            self.state = ThreadState(
                self.memory, entry_pc=self.program.entry_pc, journaling=False
            )
            self.executed = 0
            self.halted = False

        self.hierarchy = self.predictor = self.prefetcher = None
        if warming:
            self.hierarchy = DataHierarchy(config)
            self.prefetcher = StreamPrefetcher(
                config.prefetch, self.hierarchy
            )
            self.prefetcher.attach()
            self.predictor = FrontEndPredictor(config.branch)
            # Route prefetch launches through the untimed fill path.
            # This hierarchy is private to the warming pass, so
            # shadowing the bound method on the instance is contained.
            self.hierarchy.prefetch_fill = self.hierarchy.warm_prefetch_fill
            if resume_from is not None:
                self.hierarchy.load_warm_image(resume_from.hierarchy_image)
                self.predictor.load_warm_image(resume_from.predictor_image)
                self.prefetcher.load_warm_image(
                    resume_from.prefetcher_image or []
                )
            # Fuse the whole demand-miss path — hierarchy transitions
            # plus stream training — into one closure over the current
            # containers (built *after* any image load; loading
            # replaces them). Same instance-shadow containment as
            # ``prefetch_fill`` above.
            self.hierarchy.warm_access = build_warm_access(
                self.hierarchy, self.prefetcher
            )

    def advance(self, ff_insts: int) -> None:
        """Run forward to absolute depth *ff_insts* (no-op if already
        there or halted)."""
        if not self.halted and ff_insts > self.executed:
            budget = ff_insts - self.executed
            if self.warming:
                ran, self.halted = _warm_loop(
                    self.program, self.state, budget,
                    self.hierarchy, self.predictor,
                )
            else:
                ran, self.halted = _cold_loop(
                    self.program, self.state, budget
                )
            self.executed += ran

    def capture(self, ff_insts: int) -> Snapshot:
        """Snapshot the current point as depth *ff_insts*. Every image
        is a detached copy (``regs.values()``, ``memory.snapshot()``,
        and the three ``warm_image()``s all copy), so the run can keep
        advancing afterwards without aliasing the member."""
        workload, warming = self.workload, self.warming
        return Snapshot(
            workload=workload.name,
            scale=workload.scale,
            ff_insts=ff_insts,
            executed=self.executed,
            pc=self.state.pc,
            halted=self.halted,
            regs=self.state.regs.values(),
            memory_words=self.memory.snapshot(),
            warming=warming,
            warm_config=warm_config_key(self.config) if warming else None,
            hierarchy_image=self.hierarchy.warm_image() if warming else None,
            predictor_image=self.predictor.warm_image() if warming else None,
            prefetcher_image=(
                self.prefetcher.warm_image() if warming else None
            ),
        )


def fast_forward(
    workload: Workload,
    config: MachineConfig,
    ff_insts: int,
    warming: bool = True,
    resume_from: Snapshot | None = None,
) -> Snapshot:
    """Execute the first *ff_insts* instructions of *workload*
    functionally and capture the result as a :class:`Snapshot`.

    Runs the interpreter tier (correct paths only, no timing) from the
    workload's entry point — or from *resume_from*, an earlier
    snapshot of the same prefix, in which case only the remaining
    ``ff_insts - resume_from.executed`` instructions run. The warming
    protocol (see :func:`_warm_loop`) updates cache, prefetcher, and
    predictor state exactly as the detailed core would at commit,
    without its clock, and is identical whether a prefix runs in one
    shot or split across resumes.

    Stops early at HALT or a PC outside the program (the snapshot
    records how far it actually got).
    """
    if resume_from is not None:
        if (
            resume_from.workload != workload.name
            or resume_from.scale != workload.scale
        ):
            raise ValueError(
                f"snapshot is for {resume_from.workload}@{resume_from.scale}, "
                f"not {workload.name}@{workload.scale}"
            )
        if resume_from.warming != warming:
            raise ValueError("cannot resume across a warming-mode change")
        if resume_from.executed > ff_insts:
            raise ValueError(
                f"resume point ({resume_from.executed}) is past the "
                f"requested depth ({ff_insts})"
            )
        if warming and resume_from.warm_config != warm_config_key(config):
            raise ValueError("cannot resume across a warm-config change")
    run = _LiveRun(workload, config, warming, resume_from=resume_from)
    run.advance(ff_insts)
    snapshot = run.capture(ff_insts)
    snapshot.built_by = "serial"
    if resume_from is not None:
        snapshot.resumed_from_depth = resume_from.ff_insts
    return snapshot


# ----------------------------------------------------------------------
# Layer 2: the content-addressed snapshot store
# ----------------------------------------------------------------------


class SnapshotStore(IntegrityStore):
    """On-disk snapshot store under ``<cache root>/snapshots/``.

    Shares the cache root (``REPRO_CACHE_DIR`` / ``.repro_cache``) and
    the ``corrupt/`` quarantine with the run cache, but uses its own
    suffix (``.snap``) and schema magic so the two stores never clear
    or decode each other's entries.
    """

    def __init__(
        self,
        cache_root: str | os.PathLike | None = None,
        enabled: bool = True,
    ):
        if cache_root is None:
            cache_root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        from pathlib import Path

        cache_root = Path(cache_root)
        super().__init__(
            cache_root / SNAPSHOT_SUBDIR,
            magic=_SNAP_MAGIC,
            suffix=".snap",
            enabled=enabled,
            corrupt_dir=cache_root / CORRUPT_SUBDIR,
        )

    @staticmethod
    def _decode_snapshot(blob: bytes) -> Snapshot:
        snapshot = pickle.loads(blob)["snapshot"]
        if not isinstance(snapshot, Snapshot):
            raise CacheCorruptionError(
                f"payload is {type(snapshot).__name__}, not Snapshot"
            )
        return snapshot

    def get(self, key: str) -> Snapshot | None:
        """Return the stored snapshot for *key*, or ``None`` on a miss
        (corrupt entries are quarantined and counted, as in the run
        cache)."""
        return self.load(key, self._decode_snapshot)

    def put(self, key: str, snapshot: Snapshot) -> str:
        """Persist *snapshot* under *key*; return its payload digest
        (empty when the store is disabled — nothing is encoded, so an
        in-memory chain build never pays a multi-megaword pickle per
        member)."""
        if not self.enabled:
            return ""
        return self.store(key, _encode(snapshot))

    def ls(self) -> list[dict]:
        """Describe every live snapshot (for ``repro snapshot ls``)."""
        entries = []
        for path in self.entry_paths():
            key = path.stem
            size = path.stat().st_size
            snapshot = self.get(key)
            if snapshot is None:
                continue
            entries.append(
                {
                    "key": key,
                    "workload": snapshot.workload,
                    "scale": snapshot.scale,
                    "ff_insts": snapshot.ff_insts,
                    "executed": snapshot.executed,
                    "warming": snapshot.warming,
                    "parent": snapshot.parent,
                    "built_by": snapshot.built_by,
                    "resumed_from_depth": snapshot.resumed_from_depth,
                    "bytes": size,
                }
            )
        return entries


# ----------------------------------------------------------------------
# Layer 3 helpers: build-once / share-everywhere
# ----------------------------------------------------------------------


def ensure_snapshot(
    workload: Workload,
    config: MachineConfig,
    ff_insts: int,
    warming: bool = True,
    store: SnapshotStore | None = None,
) -> tuple[Snapshot, bool]:
    """Fetch (or build and persist) the snapshot for this prefix.

    Returns ``(snapshot, hit)`` where *hit* says the snapshot came from
    the store. Builds are deterministic and writes are atomic, so
    concurrent workers racing on a missing snapshot converge on
    identical bytes.
    """
    if store is None:
        store = SnapshotStore()
    key = snapshot_fingerprint(
        workload.name, workload.scale, ff_insts, config, warming
    )
    snapshot = store.get(key)
    if snapshot is not None:
        return snapshot, True
    snapshot = fast_forward(workload, config, ff_insts, warming=warming)
    store.put(key, snapshot)
    return snapshot, False


def iter_chain(
    workload: Workload,
    config: MachineConfig,
    depths,
    warming: bool = True,
    store: SnapshotStore | None = None,
    built_by: str = "serial",
):
    """Yield ``(snapshot, hit)`` per depth, building missing members
    incrementally.

    *depths* must be ascending (a :class:`SamplePlan`'s are). A depth
    of 0 yields ``(None, False)`` — that window starts cold at the
    entry point. Missing members are built by one live functional pass
    (:class:`_LiveRun`) threaded down the chain, captured at each
    depth — not one resume-copy-run-capture cycle per member — and
    persisted with their ``parent`` link. A mid-chain store hit
    re-anchors the live pass (the next miss resumes from the hit) —
    this is also what lets a crashed or timed-out prebuild make
    monotonic progress: every member lands in the store as soon as it
    is captured, so the retry resumes from the deepest stored member
    instead of the entry point.

    *built_by* stamps the provenance of fresh members (``"serial"`` /
    ``"parallel"``); ``resumed_from_depth`` records where the live
    pass was anchored. Both are digest-masked (see
    :func:`snapshot_digest`).

    Streaming matters here: a deep chain's members each carry a full
    memory image, so callers that run one detailed window per member
    should consume this generator and drop each snapshot before
    advancing — only the previous member is kept internally.
    """
    if store is None:
        store = SnapshotStore()
    prev = None
    prev_key = None
    prev_depth = None
    live = None
    anchor = None  # depth the current live pass resumed from
    for depth in depths:
        if prev_depth is not None and depth < prev_depth:
            raise ValueError(f"chain depths must be ascending: {depths}")
        prev_depth = depth
        if depth <= 0:
            yield None, False
            continue
        key = snapshot_fingerprint(
            workload.name, workload.scale, depth, config, warming
        )
        snapshot = store.get(key)
        hit = snapshot is not None
        if hit:
            live = None  # the live pass is behind this member now
        else:
            if live is None:
                live = _LiveRun(
                    workload, config, warming, resume_from=prev
                )
                anchor = prev.ff_insts if prev is not None else None
            live.advance(depth)
            snapshot = live.capture(depth)
            snapshot.parent = prev_key
            snapshot.built_by = built_by
            snapshot.resumed_from_depth = anchor
            store.put(key, snapshot)
        yield snapshot, hit
        prev, prev_key = snapshot, key


def ensure_chain(
    workload: Workload,
    config: MachineConfig,
    depths,
    warming: bool = True,
    store: SnapshotStore | None = None,
) -> tuple[list[Snapshot | None], int]:
    """Materialized :func:`iter_chain`: ``(members, store_hits)``.

    Convenient for tests and small chains; for long plans over large
    memory images prefer consuming :func:`iter_chain` directly.
    """
    members: list[Snapshot | None] = []
    hits = 0
    for snapshot, hit in iter_chain(
        workload, config, depths, warming=warming, store=store
    ):
        members.append(snapshot)
        hits += int(hit)
    return members, hits


def _plan_for_request(request, workload=None):
    """The request's :class:`SamplePlan`, or ``None`` when it is not a
    multi-region request. Needs the workload's region length, so a
    prebuilt *workload* can be passed to avoid rebuilding it."""
    regions = getattr(request, "sample_regions", 0)
    if regions < 2:
        return None
    if workload is None:
        from repro.workloads import registry

        workload = registry.build(request.workload, scale=request.scale)
    return build_sample_plan(
        workload.region,
        getattr(request, "fast_forward", 0),
        request.sample,
        regions,
        getattr(request, "sample_period", 0),
    )


@dataclass(frozen=True)
class _PrebuildTask:
    """One independent prebuild unit: the chain (or single snapshot)
    one ``(workload, scale, warm config)`` group of requests needs.

    Picklable and hashable so the generic pool executor
    (:func:`repro.harness.parallel._execute_pooled`) can ship it to a
    worker and track its retry budget; exposes ``workload`` / ``mode``
    the way :class:`~repro.harness.parallel.RunRequest` does so the
    executor's logging needs no special case.
    """

    request: object  # the representative RunRequest
    depths: tuple[int, ...]
    cache_root: str

    @property
    def workload(self) -> str:
        return self.request.workload

    @property
    def mode(self) -> str:
        return "prebuild"


def _prebuild_entry(task: _PrebuildTask, attempt: int, fault_plan) -> int:
    """Pool worker: build one task's chain into the shared store.

    Top-level so the pool can pickle it. Members land in the store as
    they are captured (see :func:`iter_chain`), so a crashed or
    timed-out attempt leaves a prefix behind and the retry resumes
    from the deepest stored member rather than starting over.
    """
    from repro.workloads import registry

    if fault_plan is not None:
        fault_plan.perturb(task.request, attempt)
    store = SnapshotStore(task.cache_root)
    workload = registry.build(
        task.request.workload, scale=task.request.scale
    )
    config = task.request.resolve_config()
    built = 0
    for snapshot, hit in iter_chain(
        workload, config, task.depths, store=store, built_by="parallel"
    ):
        if snapshot is not None and not hit:
            built += 1
    return built


def _prebuild_tasks(requests, store: SnapshotStore):
    """Deduplicate *requests* into the independent build units they
    need, dropping units the store already holds in full."""
    from repro.workloads import registry

    tasks: list[_PrebuildTask] = []
    seen: set[tuple[str, ...]] = set()
    cache_root = str(store.root.parent)
    workloads: dict[tuple[str, float], Workload] = {}
    for request in requests:
        regions = getattr(request, "sample_regions", 0)
        ff = getattr(request, "fast_forward", 0)
        if regions < 2:
            if ff <= 0:
                continue
            depths: tuple[int, ...] = (ff,)
        else:
            wkey = (request.workload, request.scale)
            if wkey not in workloads:
                workloads[wkey] = registry.build(
                    request.workload, scale=request.scale
                )
            plan = _plan_for_request(request, workloads[wkey])
            depths = tuple(d for d in plan.depths if d > 0)
        if not depths:
            continue
        config = request.resolve_config()
        keys = tuple(
            snapshot_fingerprint(
                request.workload, request.scale, depth, config
            )
            for depth in depths
        )
        if keys in seen:
            continue
        seen.add(keys)
        if all(store.contains(key) for key in keys):
            continue
        tasks.append(_PrebuildTask(request, depths, cache_root))
    return tasks


def prebuild_snapshots(
    requests,
    store: SnapshotStore | None = None,
    jobs: int | None = None,
    timeout: float | None = None,
    retries: int | None = None,
    fault_plan=None,
) -> int:
    """Build every snapshot (chain members included) *requests* will
    need, once each.

    Called by ``run_matrix`` before fanning out so all sweep points
    (and all pool workers) share one architectural prefix — for
    multi-region requests, one snapshot *chain* — instead of each
    re-paying it. Returns the number of snapshots built fresh.

    Distinct ``(workload, scale, warm config)`` chains are independent,
    so when more than one needs building and more than one worker is
    available they are built concurrently, with the same
    timeout/retry/broken-pool discipline as the run matrix itself
    (:func:`repro.harness.parallel._execute_pooled`). A task that
    exhausts its retries is *skipped*, not raised: prebuilding is an
    optimization, and whatever error killed it will surface (or not)
    when the run that needs the snapshot builds it inline. Serial and
    parallel builds produce byte-identical members — only the
    digest-masked ``built_by`` stamp differs (CI asserts this).

    *fault_plan* injects deterministic worker faults into the pooled
    path (chaos tests only), under the same keying as the run matrix:
    a plan targeting ``(request, attempt)`` perturbs the prebuild
    attempt for that request's chain.
    """
    from repro.workloads import registry

    if store is None:
        store = SnapshotStore()
    tasks = _prebuild_tasks(requests, store)
    if not tasks:
        return 0

    from repro.harness.parallel import (
        MatrixReport,
        _execute_pooled,
        _resolve_retries,
        _resolve_timeout,
        resolve_jobs,
    )

    workers = min(resolve_jobs(jobs), len(tasks))
    if store.enabled and workers > 1:
        outcomes = _execute_pooled(
            tasks,
            workers,
            timeout=_resolve_timeout(timeout),
            retries=_resolve_retries(retries),
            on_error="skip",
            backoff_base=0.05,
            fault_plan=fault_plan,
            report=MatrixReport(),
            entry=_prebuild_entry,
        )
        return sum(
            outcome.stats
            for outcome in outcomes.values()
            if outcome.status == "ok"
        )

    # Serial fallback: one worker, a single task, or a disabled store
    # (workers would each build into nothing — the parent's in-memory
    # pass is the only one that helps).
    built = 0
    for task in tasks:
        workload = registry.build(
            task.request.workload, scale=task.request.scale
        )
        config = task.request.resolve_config()
        for snapshot, hit in iter_chain(
            workload, config, task.depths, store=store
        ):
            if snapshot is not None and not hit:
                built += 1
    return built

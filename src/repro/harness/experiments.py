"""Experiment drivers: one entry point per table/figure in the paper.

Each function builds the workloads, runs the required configurations,
and returns ``(data, rendered_text)``. The benches in ``benchmarks/``
call these; so can users, e.g.::

    from repro.harness.experiments import experiment_figure11
    results, text = experiment_figure11(scale=0.2)
    print(text)

``scale`` scales workload working sets and run lengths; 1.0 is the
benchmark-sized configuration (the paper used 100M-instruction regions;
our scale-1.0 regions are ~10^5-10^6 instructions, see DESIGN.md).
"""

from __future__ import annotations

import os

from repro.analysis.characterize import characterize_run, characterize_slice
from repro.analysis.problem import classify_problem_instructions
from repro.harness import report
from repro.harness.runner import (
    PerfectSweepResult,
    TripleResult,
    run_baseline,
    run_perfect_sweep,
    run_triple,
    run_with_slices,
)
from repro.uarch.config import EIGHT_WIDE, FOUR_WIDE, MachineConfig
from repro.workloads import registry

#: Benchmarks Table 4 reports (those with non-trivial speedups).
TABLE4_BENCHMARKS = ("bzip2", "eon", "gap", "gzip", "mcf", "perl", "twolf", "vpr")


def default_scale() -> float:
    """Benchmark scale; override with the REPRO_SCALE env variable."""
    return float(os.environ.get("REPRO_SCALE", "0.35"))


def experiment_table1() -> tuple[list[MachineConfig], str]:
    """Table 1: print both machine configurations."""
    configs = [FOUR_WIDE, EIGHT_WIDE]
    text = "\n\n".join(report.render_table1(config) for config in configs)
    return configs, text


def experiment_workload_mix(scale: float | None = None):
    """Characterize the workload suite (instruction mix, working sets)."""
    from repro.analysis.mix import instruction_mix, render_mix_table

    scale = scale if scale is not None else default_scale()
    rows = [
        (name, instruction_mix(registry.build(name, scale)))
        for name in registry.all_names()
    ]
    return rows, render_mix_table(rows)


def experiment_table2(scale: float | None = None):
    """Table 2: problem-instruction coverage across all benchmarks."""
    scale = scale if scale is not None else default_scale()
    rows = []
    for name in registry.all_names():
        workload = registry.build(name, scale)
        stats = run_baseline(workload, FOUR_WIDE)
        classification = classify_problem_instructions(stats)
        rows.append((name, classification.coverage()))
    return rows, report.render_table2(rows)


def experiment_figure1(
    scale: float | None = None, configs=(FOUR_WIDE, EIGHT_WIDE)
):
    """Figure 1: baseline vs problem-perfect vs all-perfect IPC."""
    scale = scale if scale is not None else default_scale()
    results: list[PerfectSweepResult] = []
    for name in registry.all_names():
        workload = registry.build(name, scale)
        for config in configs:
            results.append(run_perfect_sweep(workload, config))
    return results, report.render_figure1(results)


def experiment_table3(scale: float | None = None):
    """Table 3: characterization of the hand-constructed slices."""
    scale = scale if scale is not None else default_scale()
    rows = []
    for name in registry.all_names():
        workload = registry.build(name, scale)
        for spec in workload.slices:
            rows.append(characterize_slice(name, spec))
    return rows, report.render_table3(rows)


def experiment_figure11(
    scale: float | None = None, config: MachineConfig = FOUR_WIDE
):
    """Figure 11: slice speedup vs constrained limit study."""
    scale = scale if scale is not None else default_scale()
    results: list[TripleResult] = []
    for name in registry.all_names():
        workload = registry.build(name, scale)
        results.append(run_triple(workload, config))
    return results, report.render_figure11(results)


def experiment_table4(
    scale: float | None = None,
    config: MachineConfig = FOUR_WIDE,
    benchmarks=TABLE4_BENCHMARKS,
):
    """Table 4: detailed with/without-slices characterization."""
    scale = scale if scale is not None else default_scale()
    rows = []
    for name in benchmarks:
        workload = registry.build(name, scale)
        base = run_baseline(workload, config)
        assisted = run_with_slices(workload, config)
        covered = len(
            {pc for spec in workload.slices for pc in spec.covered_branch_pcs}
        )
        rows.append(characterize_run(name, base, assisted, covered))
    return rows, report.render_table4(rows)

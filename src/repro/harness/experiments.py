"""Experiment drivers: one entry point per table/figure in the paper.

Each function builds the required :class:`RunRequest` matrix, executes
it through :func:`~repro.harness.parallel.run_matrix` (parallel across
``--jobs`` / ``REPRO_JOBS`` workers, memoized by the on-disk
:class:`~repro.harness.cache.RunCache`), and returns
``(data, rendered_text)``. The benches in ``benchmarks/`` call these;
so can users, e.g.::

    from repro.harness.experiments import experiment_figure11
    results, text = experiment_figure11(scale=0.2, jobs=4)
    print(text)

``scale`` scales workload working sets and run lengths; 1.0 is the
benchmark-sized configuration (the paper used 100M-instruction regions;
our scale-1.0 regions are ~10^5-10^6 instructions, see DESIGN.md).
"""

from __future__ import annotations

import math
import os

from repro.analysis.characterize import characterize_run, characterize_slice
from repro.analysis.problem import classify_problem_instructions
from repro.harness import report
from repro.harness.cache import RunCache
from repro.harness.parallel import CONFIG_PRESETS, RunRequest, run_matrix
from repro.harness.runner import (
    PerfectSweepResult,
    TripleResult,
    run_perfect_sweep,
    run_triple,
)
from repro.uarch.config import EIGHT_WIDE, FOUR_WIDE, MachineConfig
from repro.workloads import registry

#: Benchmarks Table 4 reports (those with non-trivial speedups).
TABLE4_BENCHMARKS = ("bzip2", "eon", "gap", "gzip", "mcf", "perl", "twolf", "vpr")


def default_scale() -> float:
    """Benchmark scale; override with the REPRO_SCALE env variable."""
    return float(os.environ.get("REPRO_SCALE", "0.35"))


# ----------------------------------------------------------------------
# Long-horizon sampled defaults (sampled figure benches by default)
# ----------------------------------------------------------------------

#: Functional run length to HALT per workload, as
#: ``(anchor_scale, insts_at_anchor, growth_exponent)`` — length at
#: scale *s* is ``insts * (s / anchor) ** exponent``. Measured with the
#: functional fast-forward tier; every workload is linear in scale
#: (exponent 1.0, <2% error out to the 10^6-instruction scales below).
#: gzip's length is data-dependent and jagged — a few scales hit
#: unusually long lazy-match tails and run *past* the model — but a
#: longer run only gives the windows more room, so the halt-aware
#: schedule stays valid. The figure benches use this model to place
#: detailed sample windows *inside* the run — ``workload.region`` is a
#: generous ceiling (3-4x the real HALT depth for several workloads),
#: so deriving periods from it would drop most windows past HALT.
RUN_LENGTH_MODEL: dict[str, tuple[float, int, float]] = {
    "bzip2": (4.0, 455_346, 1.0),
    "crafty": (4.0, 252_019, 1.0),
    "eon": (4.0, 671_539, 1.0),
    "gap": (4.0, 156_634, 1.0),
    "gcc": (4.0, 283_764, 1.0),
    "gzip": (4.0, 706_356, 1.0),
    "mcf": (4.0, 221_367, 1.0),
    "parser": (4.0, 394_727, 1.0),
    "perl": (4.0, 340_733, 1.0),
    "twolf": (4.0, 497_208, 1.0),
    "vortex": (4.0, 211_204, 1.0),
    "vpr": (4.0, 1_099_615, 1.0),
}

#: Default horizon for sampled figure benches: each workload arm
#: covers ~2x10^6 functionally-warmed instructions (vs the ~10^4-10^5
#: full-detail regions of ``default_scale()``), estimated from
#: SAMPLED_REGIONS detailed windows with Student-t CIs.
SAMPLED_HORIZON = 2_000_000
SAMPLED_REGIONS = 10
SAMPLED_WINDOW = 2_000

#: Fraction of the modeled run length the windows may span; the slack
#: absorbs the run-length model's error so the last window always
#: lands before HALT (a window past HALT is dropped and costs a CI
#: sample).
_HORIZON_MARGIN = 0.97


def run_length(name: str, scale: float) -> int:
    """Modeled functional run length (instructions to HALT) of
    workload *name* at *scale*."""
    anchor, insts, exponent = RUN_LENGTH_MODEL[name]
    return int(insts * (scale / anchor) ** exponent)


def scale_for_horizon(name: str, horizon: int | None = None) -> float:
    """The scale at which workload *name* runs ~*horizon* instructions
    before HALT (inverse of :func:`run_length`).

    Floored (not rounded) to two decimals: rounding up can cross onto
    one of gzip's anomalous inputs (e.g. 11.33 runs 5.65M instructions
    in a lazy-match tail while 11.32 lands on-model), and a hair-short
    scale only shaves the 3% schedule margin.
    """
    horizon = horizon or SAMPLED_HORIZON
    anchor, insts, exponent = RUN_LENGTH_MODEL[name]
    return math.floor(anchor * (horizon / insts) ** (1.0 / exponent) * 100) / 100


def sampled_plan(
    name: str,
    horizon: int | None = None,
    regions: int | None = None,
    window: int | None = None,
) -> dict:
    """Halt-aware long-horizon sampling plan for one workload.

    Returns RunRequest keyword arguments: the scale at which *name*
    runs ~*horizon* instructions, and a periodic multi-region schedule
    whose windows all land before HALT. The first window sits one
    period in (``fast_forward = period``), skipping initialization the
    same way every later window skips its gap, so all ``regions``
    chain members are warmed snapshots.
    """
    horizon = horizon or SAMPLED_HORIZON
    regions = regions or SAMPLED_REGIONS
    window = window if window is not None else SAMPLED_WINDOW
    from repro.harness.fastforward import sample_plan as _sample_plan

    _, warmup = _sample_plan(window)
    span = int(horizon * _HORIZON_MARGIN) - (window + warmup)
    period = max(span // regions, window + warmup)
    return {
        "scale": scale_for_horizon(name, horizon),
        "fast_forward": period,
        "sample": window,
        "sample_regions": regions,
        "sample_period": period,
    }


def _is_preset(config: MachineConfig) -> bool:
    """A request can only name a preset; modified configs run directly."""
    return CONFIG_PRESETS.get(config.name) == config


def experiment_table1() -> tuple[list[MachineConfig], str]:
    """Table 1: print both machine configurations."""
    configs = [FOUR_WIDE, EIGHT_WIDE]
    text = "\n\n".join(report.render_table1(config) for config in configs)
    return configs, text


def experiment_workload_mix(scale: float | None = None):
    """Characterize the workload suite (instruction mix, working sets)."""
    from repro.analysis.mix import instruction_mix, render_mix_table

    scale = scale if scale is not None else default_scale()
    rows = [
        (name, instruction_mix(registry.build(name, scale)))
        for name in registry.all_names()
    ]
    return rows, render_mix_table(rows)


def experiment_table2(
    scale: float | None = None,
    jobs: int | None = None,
    cache: RunCache | None = None,
):
    """Table 2: problem-instruction coverage across all benchmarks."""
    scale = scale if scale is not None else default_scale()
    names = registry.all_names()
    stats = run_matrix(
        [RunRequest(name, scale, mode="base") for name in names],
        jobs=jobs,
        cache=cache,
    )
    rows = [
        (name, classify_problem_instructions(s).coverage())
        for name, s in zip(names, stats)
    ]
    return rows, report.render_table2(rows)


def experiment_figure1(
    scale: float | None = None,
    configs=(FOUR_WIDE, EIGHT_WIDE),
    jobs: int | None = None,
    cache: RunCache | None = None,
):
    """Figure 1: baseline vs problem-perfect vs all-perfect IPC.

    Two matrix phases: the baselines run first (they feed the problem-
    instruction profiler), then the per-instruction-perfect and
    all-perfect overlays run from the profiled PC sets.
    """
    scale = scale if scale is not None else default_scale()
    pairs = [
        (name, config)
        for name in registry.all_names()
        for config in configs
    ]
    if not all(_is_preset(config) for _name, config in pairs):
        results = [
            run_perfect_sweep(registry.build(name, scale), config)
            for name, config in pairs
        ]
        return results, report.render_figure1(results)

    base_stats = run_matrix(
        [
            RunRequest(name, scale, mode="base", config=config.name)
            for name, config in pairs
        ],
        jobs=jobs,
        cache=cache,
    )
    classifications = [classify_problem_instructions(s) for s in base_stats]
    perfect_requests = []
    for (name, config), cls in zip(pairs, classifications):
        perfect_requests.append(
            RunRequest(
                name,
                scale,
                mode="perfect",
                config=config.name,
                perfect_branch_pcs=tuple(cls.branch_pcs),
                perfect_load_pcs=tuple(cls.load_pcs),
            )
        )
        perfect_requests.append(
            RunRequest(
                name,
                scale,
                mode="perfect",
                config=config.name,
                all_branches=True,
                all_loads=True,
            )
        )
    perfect_stats = run_matrix(perfect_requests, jobs=jobs, cache=cache)

    workloads = {name: registry.build(name, scale) for name in registry.all_names()}
    results: list[PerfectSweepResult] = []
    for i, ((name, config), cls) in enumerate(zip(pairs, classifications)):
        results.append(
            PerfectSweepResult(
                workload=workloads[name],
                config=config,
                base=base_stats[i],
                problem_perfect=perfect_stats[2 * i],
                all_perfect=perfect_stats[2 * i + 1],
                classification=cls,
            )
        )
    return results, report.render_figure1(results)


def experiment_table3(scale: float | None = None):
    """Table 3: characterization of the hand-constructed slices."""
    scale = scale if scale is not None else default_scale()
    rows = []
    for name in registry.all_names():
        workload = registry.build(name, scale)
        for spec in workload.slices:
            rows.append(characterize_slice(name, spec))
    return rows, report.render_table3(rows)


def experiment_figure11(
    scale: float | None = None,
    config: MachineConfig = FOUR_WIDE,
    jobs: int | None = None,
    cache: RunCache | None = None,
    sampled: bool = False,
    horizon: int | None = None,
):
    """Figure 11: slice speedup vs constrained limit study.

    With ``sampled=True`` (the figure benches' default), each workload
    runs at its own long-horizon scale — ~``horizon`` (default
    :data:`SAMPLED_HORIZON`) instructions covered by a halt-aware
    multi-region plan from :func:`sampled_plan` — instead of one
    global full-detail ``scale``. All three modes of a workload share
    one warmed snapshot chain (prebuilt in parallel by ``run_matrix``),
    and speedups gain per-region confidence intervals.
    """
    scale = scale if scale is not None else default_scale()
    names = registry.all_names()
    if not _is_preset(config):
        results = [
            run_triple(registry.build(name, scale), config) for name in names
        ]
        return results, report.render_figure11(results)

    plans = (
        {name: sampled_plan(name, horizon) for name in names}
        if sampled
        else {name: {"scale": scale} for name in names}
    )
    requests = [
        RunRequest(name, mode=mode, config=config.name, **plans[name])
        for name in names
        for mode in ("base", "slice", "limit")
    ]
    stats = run_matrix(requests, jobs=jobs, cache=cache)
    results = [
        TripleResult(
            workload=registry.build(name, plans[name]["scale"]),
            config=config,
            base=stats[3 * i],
            assisted=stats[3 * i + 1],
            limit=stats[3 * i + 2],
        )
        for i, name in enumerate(names)
    ]
    return results, report.render_figure11(results)


def experiment_table4(
    scale: float | None = None,
    config: MachineConfig = FOUR_WIDE,
    benchmarks=TABLE4_BENCHMARKS,
    jobs: int | None = None,
    cache: RunCache | None = None,
    sampled: bool = False,
    horizon: int | None = None,
):
    """Table 4: detailed with/without-slices characterization.

    ``sampled=True`` switches to per-workload long-horizon plans (see
    :func:`experiment_figure11`); base and slice arms share one chain.
    """
    scale = scale if scale is not None else default_scale()
    scale_of = dict.fromkeys(benchmarks, scale)
    if _is_preset(config):
        plans = (
            {name: sampled_plan(name, horizon) for name in benchmarks}
            if sampled
            else {name: {"scale": scale} for name in benchmarks}
        )
        scale_of = {name: plans[name]["scale"] for name in benchmarks}
        requests = [
            RunRequest(name, mode=mode, config=config.name, **plans[name])
            for name in benchmarks
            for mode in ("base", "slice")
        ]
        stats = run_matrix(requests, jobs=jobs, cache=cache)
        pair_of = {
            name: (stats[2 * i], stats[2 * i + 1])
            for i, name in enumerate(benchmarks)
        }
    else:
        from repro.harness.runner import run_baseline, run_with_slices

        pair_of = {}
        for name in benchmarks:
            workload = registry.build(name, scale)
            pair_of[name] = (
                run_baseline(workload, config),
                run_with_slices(workload, config),
            )
    rows = []
    for name in benchmarks:
        workload = registry.build(name, scale_of[name])
        base, assisted = pair_of[name]
        covered = len(
            {pc for spec in workload.slices for pc in spec.covered_branch_pcs}
        )
        rows.append(characterize_run(name, base, assisted, covered))
    return rows, report.render_table4(rows)

"""Deterministic fault injection for the experiment harness.

Resilience is only trustworthy if it is itself under test. A
:class:`FaultPlan` is a seeded, picklable description of *exactly*
which faults to inject where: worker crashes, worker hangs, transient
failures, and cache corruption. Determinism comes from keying every
decision on ``(seed, request identity, attempt number)`` through
SHA-256 — the same plan injects the same faults on every run, in every
worker process, regardless of scheduling.

Plans are consumed by :func:`~repro.harness.parallel.run_matrix`
(``fault_plan=``): worker-side faults fire inside the pool worker just
before the simulation starts; cache corruption is applied to the
on-disk entries before the matrix consults the cache. The chaos suite
(``tests/harness/test_chaos.py``) uses plans to assert that matrices
converge to bit-identical :class:`~repro.uarch.stats.RunStats` under
injected faults.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import time
from dataclasses import dataclass

from repro.errors import SimulationError, WorkerCrashError

#: Exit code used by injected worker crashes (distinguishable from
#: ordinary interpreter deaths in pool post-mortems).
CRASH_EXIT_CODE = 86


class FaultKind(enum.Enum):
    """What a planned fault does to its target."""

    #: The worker process dies immediately (``os._exit``), breaking the
    #: process pool mid-request.
    CRASH = "crash"
    #: The worker sleeps past any reasonable per-request timeout, then
    #: proceeds normally — exercising timeout detection and worker
    #: termination.
    HANG = "hang"
    #: The worker raises a transient :class:`SimulationError` —
    #: exercising plain retry with backoff.
    FLAKY = "flaky"
    #: One byte of the request's on-disk cache entry is flipped —
    #: exercising checksum verification and quarantine.
    CORRUPT_CACHE = "corrupt-cache"


def request_key(request) -> str:
    """Stable identity of a request for fault targeting.

    Unlike the cache fingerprint this is independent of the source-tree
    hash, so a plan authored in a test targets the same request no
    matter what revision executes it.
    """
    payload = dataclasses.asdict(request)
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )


def _roll(seed: int, kind: str, key: str, attempt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one decision."""
    digest = hashlib.sha256(
        f"{seed}:{kind}:{attempt}:{key}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable schedule of injected faults.

    Two targeting modes compose freely:

    * **Explicit** — :meth:`targeting` pins a :class:`FaultKind` to one
      ``(request, attempt)`` pair (or one request, for cache
      corruption). This is what precision tests use.
    * **Probabilistic** — the ``*_rate`` fields inject each kind with
      the given probability per ``(request, attempt)``, drawn
      deterministically from the seed. This is what chaos sweeps use.

    The plan crosses the process-pool boundary with every request, so
    it must stay small and picklable: explicit targets are stored as
    ``(request_key, attempt, kind_value)`` string tuples.
    """

    seed: int = 0
    #: Explicit worker faults: ``(request_key, attempt, kind value)``.
    injected: tuple[tuple[str, int, str], ...] = ()
    #: Requests whose on-disk cache entries are corrupted (by key).
    corrupt_keys: frozenset[str] = frozenset()
    #: Probabilistic per-(request, attempt) injection rates.
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    flaky_rate: float = 0.0
    #: How long an injected hang sleeps. Far past any sane timeout by
    #: default; tests lower it so a leaked worker cannot outlive them.
    hang_seconds: float = 3600.0

    @classmethod
    def targeting(
        cls,
        faults: dict,
        seed: int = 0,
        hang_seconds: float = 3600.0,
        corrupt=(),
        **rates,
    ) -> "FaultPlan":
        """Build a plan from ``{(request, attempt): FaultKind}``.

        ``FaultKind.CORRUPT_CACHE`` entries may be keyed by a bare
        request (the attempt is irrelevant for at-rest corruption), or
        passed as an iterable of requests via ``corrupt=``.
        """
        injected = []
        corrupt = {request_key(request) for request in corrupt}
        for target, kind in faults.items():
            if kind is FaultKind.CORRUPT_CACHE:
                request = target[0] if isinstance(target, tuple) else target
                corrupt.add(request_key(request))
                continue
            request, attempt = target
            injected.append((request_key(request), attempt, kind.value))
        return cls(
            seed=seed,
            injected=tuple(sorted(injected)),
            corrupt_keys=frozenset(corrupt),
            hang_seconds=hang_seconds,
            **rates,
        )

    # ------------------------------------------------------------------

    def fault_for(self, request, attempt: int) -> FaultKind | None:
        """The worker fault planned for *request*'s *attempt*, if any."""
        key = request_key(request)
        for planned_key, planned_attempt, kind in self.injected:
            if planned_key == key and planned_attempt == attempt:
                return FaultKind(kind)
        for kind, rate in (
            (FaultKind.CRASH, self.crash_rate),
            (FaultKind.HANG, self.hang_rate),
            (FaultKind.FLAKY, self.flaky_rate),
        ):
            if rate > 0.0 and _roll(self.seed, kind.value, key, attempt) < rate:
                return kind
        return None

    def should_corrupt(self, request) -> bool:
        return request_key(request) in self.corrupt_keys

    @property
    def active(self) -> bool:
        """Does this plan inject anything at all?"""
        return bool(
            self.injected
            or self.corrupt_keys
            or self.crash_rate
            or self.hang_rate
            or self.flaky_rate
        )

    # ------------------------------------------------------------------

    def perturb(self, request, attempt: int, in_process: bool = False) -> None:
        """Apply the planned worker fault for ``(request, attempt)``.

        Called inside the pool worker before the simulation runs. With
        ``in_process=True`` (sequential execution in the harness
        process) an injected crash raises :class:`WorkerCrashError`
        instead of killing the interpreter.
        """
        kind = self.fault_for(request, attempt)
        if kind is None or kind is FaultKind.CORRUPT_CACHE:
            return
        if kind is FaultKind.CRASH:
            if in_process:
                raise WorkerCrashError(
                    f"injected worker crash (attempt {attempt})",
                    attempts=attempt + 1,
                )
            os._exit(CRASH_EXIT_CODE)
        if kind is FaultKind.HANG:
            time.sleep(self.hang_seconds)
            return
        # FaultKind.FLAKY
        raise SimulationError(f"injected transient failure (attempt {attempt})")

    def corrupt_cache_entries(self, cache, requests) -> int:
        """Flip one byte in each targeted request's cache entry.

        The flipped offset is drawn deterministically from the seed.
        Returns the number of entries actually corrupted (entries that
        do not exist on disk are silently skipped).
        """
        from repro.harness.cache import fingerprint

        corrupted = 0
        seen = set()
        for request in requests:
            key = request_key(request)
            if key in seen or key not in self.corrupt_keys:
                continue
            seen.add(key)
            path = cache._path(fingerprint(request))
            try:
                raw = bytearray(path.read_bytes())
            except OSError:
                continue
            if not raw:
                continue
            offset = int(
                _roll(self.seed, "corrupt-offset", key, 0) * len(raw)
            )
            raw[offset] ^= 0xFF
            path.write_bytes(bytes(raw))
            corrupted += 1
        return corrupted

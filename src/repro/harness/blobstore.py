"""Checksummed, quarantining on-disk blob store.

The disk discipline shared by the run cache
(:mod:`repro.harness.cache`) and the snapshot store
(:mod:`repro.harness.fastforward`): entries are content-addressed
files whose payload follows a fixed plain-bytes header — magic +
schema tag + payload SHA-256 — and the checksum is verified **before
any unpickling**, so corrupted bytes never reach the pickle parser
(whose failure modes on rotten input include attempting multi-GB
allocations, not just raising). An entry that fails validation is
**quarantined** — moved to the corrupt directory, counted, and logged —
then treated as a miss, so the result is recomputed and the evidence
survives for inspection; corruption is never silently swallowed.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
from pathlib import Path

from repro.errors import CacheCorruptionError

log = logging.getLogger(__name__)

#: Subdirectory (under a store's quarantine root) where corrupt
#: entries are moved.
CORRUPT_SUBDIR = "corrupt"

#: Exceptions a hostile or rotten pickle payload can raise while being
#: decoded and validated. Anything else (a bug in our own code, a
#: KeyboardInterrupt, an OS-level failure) propagates — only *decode*
#: failures mean corruption.
DECODE_ERRORS = (
    pickle.PickleError,
    EOFError,
    ValueError,
    KeyError,
    IndexError,
    TypeError,
    AttributeError,
    ImportError,
    MemoryError,
)


def payload_digest(blob: bytes) -> str:
    """Hex SHA-256 of a payload — the digest stored in entry headers."""
    return hashlib.sha256(blob).hexdigest()


class IntegrityStore:
    """Key -> checksummed-payload store with hit/miss/corruption
    accounting.

    Subclasses choose the magic header (which carries their schema
    version), the file suffix (distinct suffixes let two stores share
    one tree without clearing each other), and how payload bytes map to
    domain objects. A disabled store (``enabled=False``) never reads or
    writes but still exists as an object, so call sites need no
    branching.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        magic: bytes,
        suffix: str = ".pkl",
        enabled: bool = True,
        corrupt_dir: str | os.PathLike | None = None,
    ):
        self.root = Path(root)
        self.magic = magic
        self.suffix = suffix
        self.enabled = enabled
        self.corrupt_dir = (
            Path(corrupt_dir)
            if corrupt_dir is not None
            else self.root / CORRUPT_SUBDIR
        )
        self._header_len = len(magic) + 64 + 1  # magic + sha256 hex + \n
        self.hits = 0
        self.misses = 0
        #: Entries that failed checksum/schema validation and were
        #: quarantined instead of being trusted.
        self.corruptions = 0

    # ------------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}{self.suffix}"

    def _verify(self, raw: bytes) -> bytes:
        """Validate one entry's header + checksum; return the payload.

        Integrity first, parsing second: the payload is only handed to
        ``pickle.loads`` after its checksum verifies.
        """
        magic = self.magic
        if not raw.startswith(magic):
            raise CacheCorruptionError(f"bad magic/schema (want {magic!r})")
        digest = raw[len(magic) : len(magic) + 64]
        if raw[len(magic) + 64 : self._header_len] != b"\n":
            raise CacheCorruptionError("malformed entry header")
        blob = raw[self._header_len :]
        if payload_digest(blob).encode() != digest:
            raise CacheCorruptionError("payload checksum mismatch")
        return blob

    def _quarantine(self, path: Path, reason: Exception) -> None:
        """Move a corrupt entry aside — evidence, not a silent miss."""
        self.corruptions += 1
        dest = self.corrupt_dir / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
            where = str(dest)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
            where = "(unlinked; quarantine failed)"
        log.warning(
            "quarantined corrupt cache entry %s -> %s: %s",
            path.name,
            where,
            reason,
        )

    # ------------------------------------------------------------------

    def load(self, key: str, decode):
        """Return ``decode(payload)`` for *key*, or ``None`` on a miss.

        *decode* maps verified payload bytes to the domain object and
        must raise :class:`CacheCorruptionError` (or one of
        :data:`DECODE_ERRORS`) on anything it does not trust. An entry
        that fails verification or decoding is quarantined and counted
        as both a corruption and a miss.
        """
        if not self.enabled:
            self.misses += 1
            return None
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:
            # Unreadable but present (permissions, I/O error): a miss,
            # but not evidence of corruption — leave the file alone.
            log.warning("unreadable cache entry %s: %s", path, exc)
            self.misses += 1
            return None
        try:
            value = decode(self._verify(raw))
        except CacheCorruptionError as exc:
            self._quarantine(path, exc)
            self.misses += 1
            return None
        except DECODE_ERRORS as exc:
            self._quarantine(path, CacheCorruptionError(str(exc), str(path)))
            self.misses += 1
            return None
        self.hits += 1
        return value

    def store(self, key: str, blob: bytes) -> str:
        """Write *blob* under *key* (atomic rename, last writer wins);
        return the payload digest (also when the store is disabled, so
        callers can reason about content identity without I/O)."""
        digest = payload_digest(blob)
        if not self.enabled:
            return digest
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            fh.write(self.magic + digest.encode() + b"\n" + blob)
        os.replace(tmp, path)
        return digest

    def contains(self, key: str) -> bool:
        """Cheap existence probe — no read, no checksum, no counters.

        Used to plan work (e.g. "is this snapshot chain fully built?")
        without paying a multi-megabyte unpickle per member. A corrupt
        entry still reads as present; :meth:`load` is what detects and
        quarantines it when the payload is actually needed.
        """
        return self.enabled and self._path(key).exists()

    def quarantined_count(self) -> int:
        """Number of quarantined entries bearing this store's suffix."""
        if not self.corrupt_dir.exists():
            return 0
        return sum(
            1 for _ in self.corrupt_dir.glob(f"*{self.suffix}")
        )

    def total_bytes(self) -> int:
        """Total on-disk size of live entries (headers included)."""
        return sum(path.stat().st_size for path in self.entry_paths())

    def entry_paths(self):
        """Every live entry file (quarantined ones excluded)."""
        if not self.root.exists():
            return
        corrupt = self.corrupt_dir
        for path in sorted(self.root.rglob(f"*{self.suffix}")):
            if corrupt in path.parents:
                continue
            yield path

    def clear(self) -> int:
        """Delete every entry with this store's suffix (quarantined
        ones included); return the number removed."""
        removed = 0
        roots = [self.root]
        # A quarantine directory outside the store root (stores sharing
        # one quarantine) is swept separately; under the root, rglob
        # already covers it.
        if self.corrupt_dir.exists() and self.root not in (
            self.corrupt_dir, *self.corrupt_dir.parents
        ):
            roots.append(self.corrupt_dir)
        for root in roots:
            if not root.exists():
                continue
            for path in root.rglob(f"*{self.suffix}"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

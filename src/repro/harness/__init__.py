"""Experiment harness: runners, experiment drivers, and text reports."""

from repro.harness.runner import (
    PerfectSweepResult,
    TripleResult,
    covered_problem_spec,
    run_baseline,
    run_perfect,
    run_perfect_sweep,
    run_triple,
    run_with_slices,
)

__all__ = [
    "PerfectSweepResult",
    "TripleResult",
    "covered_problem_spec",
    "run_baseline",
    "run_perfect",
    "run_perfect_sweep",
    "run_triple",
    "run_with_slices",
]

"""Experiment harness: runners, experiment drivers, and text reports."""

from repro.harness.cache import RunCache
from repro.harness.faults import FaultKind, FaultPlan
from repro.harness.parallel import (
    MatrixReport,
    RequestOutcome,
    RunRequest,
    execute_request,
    run_matrix,
)
from repro.harness.runner import (
    PerfectSweepResult,
    TripleResult,
    covered_problem_spec,
    run_baseline,
    run_perfect,
    run_perfect_sweep,
    run_triple,
    run_with_slices,
)

__all__ = [
    "FaultKind",
    "FaultPlan",
    "MatrixReport",
    "PerfectSweepResult",
    "RequestOutcome",
    "RunCache",
    "RunRequest",
    "TripleResult",
    "covered_problem_spec",
    "execute_request",
    "run_matrix",
    "run_baseline",
    "run_perfect",
    "run_perfect_sweep",
    "run_triple",
    "run_with_slices",
]

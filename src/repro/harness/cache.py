"""Content-addressed on-disk cache for simulation runs.

Every paper experiment is a pure function of its
:class:`~repro.harness.parallel.RunRequest` — the simulator is
deterministic (see ``tests/harness/test_determinism.py``) — so a run's
:class:`~repro.uarch.stats.RunStats` can be cached on disk and replayed
for free. Keys are content-addressed:

``key = sha256(schema version + source-tree hash + canonical request)``

where the *source-tree hash* digests every ``.py`` file under
``src/repro/``. Any simulator change therefore invalidates the whole
cache cleanly, while re-rendering a table after an unrelated edit (docs,
tests, benchmarks) is a pure cache hit.

Entries live under ``.repro_cache/<key[:2]>/<key>.pkl`` (override the
root with ``REPRO_CACHE_DIR``) with the checksummed-payload /
corrupt-quarantine disk discipline of
:class:`~repro.harness.blobstore.IntegrityStore`: a fixed plain-bytes
header — magic + schema + payload SHA-256 — precedes the pickled
payload, the checksum is verified **before any unpickling**, and a
corrupt entry is moved to ``.repro_cache/corrupt/``, counted
(:attr:`RunCache.corruptions`), and logged, then treated as a miss.
The warmed-state snapshot store (:mod:`repro.harness.fastforward`)
shares the same discipline (and the same quarantine directory) with a
distinct suffix and schema. Escape hatches: the ``--no-cache`` CLI flag
and ``repro cache clear``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from pathlib import Path

from repro.errors import CacheCorruptionError
from repro.harness.blobstore import (
    CORRUPT_SUBDIR,
    DECODE_ERRORS,
    IntegrityStore,
)
from repro.uarch.stats import RunStats

__all__ = [
    "CORRUPT_SUBDIR",
    "DECODE_ERRORS",
    "DEFAULT_CACHE_DIR",
    "RunCache",
    "SCHEMA_VERSION",
    "WINDOW_SUBDIR",
    "WindowCache",
    "fingerprint",
    "source_tree_hash",
    "window_fingerprint",
]

#: Bump when the cache payload layout changes; old entries become
#: misses instead of unpickling into the wrong shape. (2: plain-bytes
#: integrity header + checksummed pickle payload.)
SCHEMA_VERSION = 2

#: Entry header magic (see :mod:`repro.harness.blobstore` for the full
#: header layout: magic + payload SHA-256 hex + newline).
_MAGIC = b"repro-cache-%d\n" % SCHEMA_VERSION
_HEADER_LEN = len(_MAGIC) + 64 + 1  # magic + sha256 hex + newline

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Subdirectory (under the cache root) holding per-window results.
WINDOW_SUBDIR = "windows"

#: Window-entry header magic — own schema tag so the run cache and the
#: window store never decode each other's entries.
_WINDOW_MAGIC = b"repro-window-%d\n" % SCHEMA_VERSION

_source_hash_cache: str | None = None


def source_tree_hash() -> str:
    """Digest of every Python source file under ``src/repro/``.

    Computed once per process: the source tree cannot change underneath
    a running experiment in any way the cache should honor.
    """
    global _source_hash_cache
    if _source_hash_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _source_hash_cache = digest.hexdigest()
    return _source_hash_cache


def fingerprint(request, source_hash: str | None = None) -> str:
    """Content-addressed key for *request* (a ``RunRequest``)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "source": source_hash if source_hash is not None else source_tree_hash(),
        "request": dataclasses.asdict(request),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def window_fingerprint(request, depth: int, source_hash: str | None = None) -> str:
    """Content-addressed key for one detailed *window* of a sampled run.

    A multi-region request is a schedule of independent windows; each
    window's result depends on the request *minus* the schedule
    (``sample_regions``/``sample_period`` choose which windows exist,
    not what any one of them computes, and ``fast_forward`` is the
    schedule's origin, not the window's own depth) *plus* the window's
    own coordinates: its chain depth and the derived warmup/sample
    lengths. Two schedules that overlap — an 8-region sweep re-run at
    10 regions, or a shifted ``fast_forward`` whose periodic grid lands
    on the same depths — therefore share entries for every common
    window instead of recomputing whole requests.
    """
    base = dataclasses.asdict(request)
    sample = base.pop("sample")
    for field in ("fast_forward", "sample_regions", "sample_period"):
        base.pop(field)
    # Local import: fastforward imports this module for the store
    # discipline, so the warmup rule is resolved lazily.
    from repro.harness.fastforward import sample_plan

    _region, warmup = sample_plan(sample)
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "window",
        "source": source_hash if source_hash is not None else source_tree_hash(),
        "request": base,
        "window": {"depth": depth, "warmup": warmup, "sample": sample},
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class RunCache(IntegrityStore):
    """On-disk run cache with hit/miss/corruption accounting.

    A disabled cache (``enabled=False``) never reads or writes but
    still exists as an object, so call sites need no branching.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        enabled: bool = True,
    ):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        super().__init__(root, magic=_MAGIC, suffix=".pkl", enabled=enabled)

    # ------------------------------------------------------------------

    @staticmethod
    def _decode_stats(blob: bytes) -> RunStats:
        """Payload decoder: checksummed bytes -> validated RunStats."""
        stats = pickle.loads(blob)["stats"]
        if not isinstance(stats, RunStats):
            raise CacheCorruptionError(
                f"payload is {type(stats).__name__}, not RunStats"
            )
        return stats

    def get(self, request) -> RunStats | None:
        """Return the cached stats for *request*, or ``None`` on a miss.

        An entry that fails decoding or validation (truncated pickle,
        checksum mismatch, wrong schema, foreign payload) is quarantined
        to ``corrupt/`` and counted as both a corruption and a miss.
        """
        return self.load(fingerprint(request), self._decode_stats)

    def get_by_key(self, key: str) -> RunStats | None:
        """Like :meth:`get`, addressed by an already-computed
        fingerprint — the experiment service's serve path, which holds
        result keys, not request objects."""
        return self.load(key, self._decode_stats)

    def put(self, request, stats: RunStats) -> None:
        """Store *stats* for *request* (atomic rename, last writer wins).

        The pickled payload follows a plain-bytes header carrying its
        SHA-256, so :meth:`get` can tell bit rot from a valid entry
        without unpickling anything.
        """
        if not self.enabled:
            return
        blob = pickle.dumps(
            {"request": request, "stats": stats},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self.store(fingerprint(request), blob)


class WindowCache(IntegrityStore):
    """Per-window result store under ``<cache root>/windows/``.

    The finer-grained sibling of :class:`RunCache`: one entry per
    detailed window of a multi-region run, keyed by
    :func:`window_fingerprint`. Shares the cache root and the
    ``corrupt/`` quarantine with the run cache, but uses its own
    suffix (``.win``) and schema magic so the stores never clear or
    decode each other's entries.
    """

    def __init__(
        self,
        cache_root: str | os.PathLike | None = None,
        enabled: bool = True,
    ):
        if cache_root is None:
            cache_root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        cache_root = Path(cache_root)
        super().__init__(
            cache_root / WINDOW_SUBDIR,
            magic=_WINDOW_MAGIC,
            suffix=".win",
            enabled=enabled,
            corrupt_dir=cache_root / CORRUPT_SUBDIR,
        )

    @staticmethod
    def _decode_stats(blob: bytes) -> RunStats:
        stats = pickle.loads(blob)["stats"]
        if not isinstance(stats, RunStats):
            raise CacheCorruptionError(
                f"payload is {type(stats).__name__}, not RunStats"
            )
        return stats

    def get(self, key: str) -> RunStats | None:
        """Return the cached window stats for *key*, or ``None`` on a
        miss (corrupt entries quarantined and counted, as in the run
        cache)."""
        return self.load(key, self._decode_stats)

    def put(self, key: str, stats: RunStats) -> None:
        """Store one window's *stats* under its precomputed key."""
        if not self.enabled:
            return
        blob = pickle.dumps({"stats": stats}, protocol=pickle.HIGHEST_PROTOCOL)
        self.store(key, blob)

"""Content-addressed on-disk cache for simulation runs.

Every paper experiment is a pure function of its
:class:`~repro.harness.parallel.RunRequest` — the simulator is
deterministic (see ``tests/harness/test_determinism.py``) — so a run's
:class:`~repro.uarch.stats.RunStats` can be cached on disk and replayed
for free. Keys are content-addressed:

``key = sha256(schema version + source-tree hash + canonical request)``

where the *source-tree hash* digests every ``.py`` file under
``src/repro/``. Any simulator change therefore invalidates the whole
cache cleanly, while re-rendering a table after an unrelated edit (docs,
tests, benchmarks) is a pure cache hit.

Entries live under ``.repro_cache/<key[:2]>/<key>.pkl`` (override the
root with ``REPRO_CACHE_DIR``) as a fixed plain-bytes header — magic +
schema + payload SHA-256 — followed by the pickled payload. The
checksum is verified **before any unpickling**, so corrupted bytes
never reach the pickle parser (whose failure modes on rotten input
include attempting multi-GB allocations, not just raising).
:meth:`RunCache.get` thus detects truncation, bit rot, and foreign
payloads before trusting them. A corrupt entry is **quarantined** — moved to
``.repro_cache/corrupt/``, counted (:attr:`RunCache.corruptions`), and
logged — then treated as a miss, so the run is re-executed and the
evidence survives for inspection; corruption is never silently
swallowed. Escape hatches: the ``--no-cache`` CLI flag and
``repro cache clear``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
from pathlib import Path

from repro.errors import CacheCorruptionError
from repro.uarch.stats import RunStats

log = logging.getLogger(__name__)

#: Bump when the cache payload layout changes; old entries become
#: misses instead of unpickling into the wrong shape. (2: plain-bytes
#: integrity header + checksummed pickle payload.)
SCHEMA_VERSION = 2

#: Entry header: magic+schema, then the payload SHA-256 hex, then the
#: payload. Plain bytes, not pickle: integrity is checked before the
#: pickle parser sees anything.
_MAGIC = b"repro-cache-%d\n" % SCHEMA_VERSION
_HEADER_LEN = len(_MAGIC) + 64 + 1  # magic + sha256 hex + newline

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Subdirectory (under the cache root) where corrupt entries are moved.
CORRUPT_SUBDIR = "corrupt"

#: Exceptions a hostile or rotten pickle payload can raise while being
#: decoded and validated. Anything else (a bug in our own code, a
#: KeyboardInterrupt, an OS-level failure) propagates — only *decode*
#: failures mean corruption.
DECODE_ERRORS = (
    pickle.PickleError,
    EOFError,
    ValueError,
    KeyError,
    IndexError,
    TypeError,
    AttributeError,
    ImportError,
    MemoryError,
)

_source_hash_cache: str | None = None


def source_tree_hash() -> str:
    """Digest of every Python source file under ``src/repro/``.

    Computed once per process: the source tree cannot change underneath
    a running experiment in any way the cache should honor.
    """
    global _source_hash_cache
    if _source_hash_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _source_hash_cache = digest.hexdigest()
    return _source_hash_cache


def fingerprint(request, source_hash: str | None = None) -> str:
    """Content-addressed key for *request* (a ``RunRequest``)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "source": source_hash if source_hash is not None else source_tree_hash(),
        "request": dataclasses.asdict(request),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class RunCache:
    """On-disk run cache with hit/miss/corruption accounting.

    A disabled cache (``enabled=False``) never reads or writes but
    still exists as an object, so call sites need no branching.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        enabled: bool = True,
    ):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        #: Entries that failed checksum/schema validation and were
        #: quarantined to ``corrupt/`` instead of being trusted.
        self.corruptions = 0

    # ------------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _decode(self, raw: bytes) -> RunStats:
        """Decode and validate one cache entry; raise on any doubt.

        Integrity first, parsing second: the payload is only handed to
        ``pickle.loads`` after its checksum verifies, because the
        pickle parser's failure modes on rotten bytes include trying
        to allocate whatever a corrupted length prefix says (which can
        wedge the process), not just raising.
        """
        if not raw.startswith(_MAGIC):
            raise CacheCorruptionError(
                f"bad magic/schema (want {_MAGIC!r})"
            )
        digest = raw[len(_MAGIC) : len(_MAGIC) + 64]
        if raw[len(_MAGIC) + 64 : _HEADER_LEN] != b"\n":
            raise CacheCorruptionError("malformed entry header")
        blob = raw[_HEADER_LEN:]
        if hashlib.sha256(blob).hexdigest().encode() != digest:
            raise CacheCorruptionError("payload checksum mismatch")
        stats = pickle.loads(blob)["stats"]
        if not isinstance(stats, RunStats):
            raise CacheCorruptionError(
                f"payload is {type(stats).__name__}, not RunStats"
            )
        return stats

    def _quarantine(self, path: Path, reason: Exception) -> None:
        """Move a corrupt entry aside — evidence, not a silent miss."""
        self.corruptions += 1
        dest = self.root / CORRUPT_SUBDIR / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
            where = str(dest)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
            where = "(unlinked; quarantine failed)"
        log.warning(
            "quarantined corrupt cache entry %s -> %s: %s",
            path.name,
            where,
            reason,
        )

    def get(self, request) -> RunStats | None:
        """Return the cached stats for *request*, or ``None`` on a miss.

        An entry that fails decoding or validation (truncated pickle,
        checksum mismatch, wrong schema, foreign payload) is quarantined
        to ``corrupt/`` and counted as both a corruption and a miss.
        """
        if not self.enabled:
            self.misses += 1
            return None
        path = self._path(fingerprint(request))
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:
            # Unreadable but present (permissions, I/O error): a miss,
            # but not evidence of corruption — leave the file alone.
            log.warning("unreadable cache entry %s: %s", path, exc)
            self.misses += 1
            return None
        try:
            stats = self._decode(raw)
        except CacheCorruptionError as exc:
            self._quarantine(path, exc)
            self.misses += 1
            return None
        except DECODE_ERRORS as exc:
            self._quarantine(path, CacheCorruptionError(str(exc), str(path)))
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def put(self, request, stats: RunStats) -> None:
        """Store *stats* for *request* (atomic rename, last writer wins).

        The pickled payload follows a plain-bytes header carrying its
        SHA-256, so :meth:`get` can tell bit rot from a valid entry
        without unpickling anything.
        """
        if not self.enabled:
            return
        path = self._path(fingerprint(request))
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(
            {"request": request, "stats": stats},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest = hashlib.sha256(blob).hexdigest().encode()
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            fh.write(_MAGIC + digest + b"\n" + blob)
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every cache entry (quarantined ones included); return
        the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

"""Content-addressed on-disk cache for simulation runs.

Every paper experiment is a pure function of its
:class:`~repro.harness.parallel.RunRequest` — the simulator is
deterministic (see ``tests/harness/test_determinism.py``) — so a run's
:class:`~repro.uarch.stats.RunStats` can be cached on disk and replayed
for free. Keys are content-addressed:

``key = sha256(schema version + source-tree hash + canonical request)``

where the *source-tree hash* digests every ``.py`` file under
``src/repro/``. Any simulator change therefore invalidates the whole
cache cleanly, while re-rendering a table after an unrelated edit (docs,
tests, benchmarks) is a pure cache hit.

Entries are pickle files under ``.repro_cache/<key[:2]>/<key>.pkl``
(override the root with ``REPRO_CACHE_DIR``). A corrupted or
truncated entry is deleted and treated as a miss — the run is simply
re-executed. Escape hatches: the ``--no-cache`` CLI flag and
``repro cache clear``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from pathlib import Path

from repro.uarch.stats import RunStats

#: Bump when the cache payload layout changes; old entries become
#: misses instead of unpickling into the wrong shape.
SCHEMA_VERSION = 1

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

_source_hash_cache: str | None = None


def source_tree_hash() -> str:
    """Digest of every Python source file under ``src/repro/``.

    Computed once per process: the source tree cannot change underneath
    a running experiment in any way the cache should honor.
    """
    global _source_hash_cache
    if _source_hash_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _source_hash_cache = digest.hexdigest()
    return _source_hash_cache


def fingerprint(request, source_hash: str | None = None) -> str:
    """Content-addressed key for *request* (a ``RunRequest``)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "source": source_hash if source_hash is not None else source_tree_hash(),
        "request": dataclasses.asdict(request),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class RunCache:
    """On-disk run cache with hit/miss accounting.

    A disabled cache (``enabled=False``) never reads or writes but
    still exists as an object, so call sites need no branching.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        enabled: bool = True,
    ):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, request) -> RunStats | None:
        """Return the cached stats for *request*, or ``None`` on a miss.

        A corrupted entry (truncated pickle, wrong schema, wrong
        payload type) is deleted and counted as a miss.
        """
        if not self.enabled:
            self.misses += 1
            return None
        path = self._path(fingerprint(request))
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            stats = payload["stats"]
            if payload["schema"] != SCHEMA_VERSION or not isinstance(
                stats, RunStats
            ):
                raise ValueError("stale or foreign cache payload")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Unreadable entry: recover by re-running, not crashing.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def put(self, request, stats: RunStats) -> None:
        """Store *stats* for *request* (atomic rename, last writer wins)."""
        if not self.enabled:
            return
        path = self._path(fingerprint(request))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SCHEMA_VERSION,
            "request": request,
            "stats": stats,
        }
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every cache entry; return the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

"""Simulator self-benchmark regimes, shared by ``repro bench`` and
``benchmarks/bench_simulator_throughput.py``.

Not a paper experiment — these regimes track the simulator's own
performance (simulated instructions per wall second) so model changes
that slow it down are visible, and so ``repro bench --profile`` can
answer "where does the time go" without hand-building a workload:

* **balanced** — slice-assisted vpr at the default machine: fetch,
  issue, and commit are all busy most cycles, so this tracks the cost
  of the per-cycle work itself. The fused basic-block tier targets
  this regime.
* **memory_bound** — mcf (slices off) on a far-memory machine (small
  window, multi-thousand-cycle miss latency): nearly every cycle is
  idle miss-wait, the regime the event-driven skipping loop targets.
* **slice_heavy** — vpr's slices on an 8-context machine: more
  concurrent helper threads means constant fork/activation traffic and
  prediction-correlator churn, the regime where slice-machinery
  overheads (CAM probes, journal rollback, correlator retire hooks)
  dominate rather than the main thread's own per-cycle work.
"""

from __future__ import annotations

import cProfile
import dataclasses
import io
import pstats
import time
from dataclasses import dataclass

from repro.uarch.config import FOUR_WIDE, MachineConfig
from repro.uarch.core import Core
from repro.uarch.stats import RunStats
from repro.workloads import registry


@dataclass(frozen=True)
class BenchRegime:
    """One self-benchmark configuration: workload + machine + mode."""

    name: str
    workload: str
    scale: float
    mode: str  # "base" or "slice"
    config: MachineConfig
    description: str

    def build_workload(self):
        return registry.build(self.workload, scale=self.scale)

    def build_core(self, workload=None, **overrides) -> Core:
        """Build a Core; pass a prebuilt *workload* to share its Program
        (and therefore the program-wide fused-segment cache) across
        rounds — a fresh build would re-pay segment warmup every time."""
        if workload is None:
            workload = self.build_workload()
        kwargs = dict(
            memory_image=workload.memory_image,
            region=workload.region,
            workload_name=workload.name,
        )
        if self.mode == "slice":
            kwargs["slices"] = tuple(workload.slices)
        kwargs.update(overrides)
        return Core(workload.program, self.config, **kwargs)


REGIMES: dict[str, BenchRegime] = {
    "balanced": BenchRegime(
        name="balanced",
        workload="vpr",
        scale=0.05,
        mode="slice",
        config=FOUR_WIDE,
        description="slice-assisted vpr, default machine (fetch-busy)",
    ),
    "memory_bound": BenchRegime(
        name="memory_bound",
        workload="mcf",
        scale=0.2,
        mode="base",
        # A small window bounds the wrong-path churn a miss can trigger,
        # and a ~1µs-class miss latency (3000 cycles at a few GHz —
        # remote/disaggregated memory) makes idle miss-wait dominate.
        config=dataclasses.replace(
            FOUR_WIDE,
            name="far-memory",
            memory_latency=3000,
            window_entries=32,
        ),
        description="base mcf, far-memory machine (miss-wait dominated)",
    ),
    "slice_heavy": BenchRegime(
        name="slice_heavy",
        workload="vpr",
        scale=0.1,
        mode="slice",
        # Twice the helper contexts: forks land on an idle context far
        # more often, so activation/release, per-slice journaling, and
        # correlator retire traffic all scale up.
        config=dataclasses.replace(
            FOUR_WIDE, name="8-context", thread_contexts=8
        ),
        description="slice-assisted vpr, 8 thread contexts (fork churn)",
    ),
}


def run_regime(
    regime: BenchRegime, workload=None, **overrides
) -> tuple[RunStats, float]:
    """Run one simulation of *regime*, returning (stats, wall seconds).

    Core construction (workload build, slice load) is excluded from the
    timing; only ``run()`` is measured.
    """
    core = regime.build_core(workload=workload, **overrides)
    start = time.perf_counter()
    stats = core.run()
    return stats, time.perf_counter() - start


def best_rate(
    regime: BenchRegime, rounds: int = 3, **overrides
) -> tuple[float, RunStats]:
    """Best-of-*rounds* simulated-instructions-per-second for *regime*.

    Machine noise only ever slows a round down, so best-of-N converges
    on the true cost. All rounds share one workload so fused segments
    compiled in round 1 are cache hits afterwards (the steady state a
    long experiment matrix sees).
    """
    workload = regime.build_workload()
    best = 0.0
    best_stats = None
    for _ in range(rounds):
        stats, elapsed = run_regime(regime, workload=workload, **overrides)
        rate = stats.committed / elapsed
        if rate > best:
            best, best_stats = rate, stats
    return best, best_stats


def profile_regime(
    regime: BenchRegime, top: int = 25, **overrides
) -> tuple[RunStats, str]:
    """Run *regime* once under ``cProfile``; return (stats, report).

    The report is the top-*top* entries by cumulative time — the
    standard first question ("which subsystem owns the wall clock")
    for a simulator perf regression.
    """
    core = regime.build_core(**overrides)
    profiler = cProfile.Profile()
    profiler.enable()
    stats = core.run()
    profiler.disable()
    buf = io.StringIO()
    ps = pstats.Stats(profiler, stream=buf)
    ps.sort_stats("cumulative").print_stats(top)
    header = (
        f"cProfile, regime {regime.name!r}: {regime.description}\n"
        f"workload={regime.workload} scale={regime.scale} "
        f"mode={regime.mode} machine={regime.config.name}\n"
        f"{stats.committed} committed instructions, {stats.cycles} cycles\n"
    )
    return stats, header + buf.getvalue()

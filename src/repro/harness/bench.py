"""Simulator self-benchmark regimes, shared by ``repro bench`` and
``benchmarks/bench_simulator_throughput.py``.

Not a paper experiment — these regimes track the simulator's own
performance (simulated instructions per wall second) so model changes
that slow it down are visible, and so ``repro bench --profile`` can
answer "where does the time go" without hand-building a workload:

* **balanced** — slice-assisted vpr at the default machine: fetch,
  issue, and commit are all busy most cycles, so this tracks the cost
  of the per-cycle work itself. The fused basic-block tier targets
  this regime.
* **memory_bound** — mcf (slices off) on a far-memory machine (small
  window, multi-thousand-cycle miss latency): nearly every cycle is
  idle miss-wait, the regime the event-driven skipping loop targets.
* **slice_heavy** — vpr's slices on an 8-context machine: more
  concurrent helper threads means constant fork/activation traffic and
  prediction-correlator churn, the regime where slice-machinery
  overheads (CAM probes, journal rollback, correlator retire hooks)
  dominate rather than the main thread's own per-cycle work.
* **sampled** — base mcf with a 20k-instruction warmed functional
  fast-forward and a 4k-instruction measured region
  (:mod:`repro.harness.fastforward`): the sampled-simulation regime,
  where the interpreter tier and snapshot restore carry most of the
  program and the detailed core only runs the discard window + region.
* **sampled_multi** — base mcf with eight periodic 2k-instruction
  windows along a snapshot chain built fresh in-memory every round:
  the multi-region regime, dominated by the fused functional-warming
  tier (:mod:`repro.uarch.warmfuse`) carrying the inter-window gaps.
  Unlike **sampled**, the chain build is *inside* the timed region —
  this measures the one-shot (unamortized) cost of a sampled run.
* **sampled_parallel** — the same 8-window mcf schedule, but run the
  way a sweep runs it: chain prebuilt into the snapshot store
  (untimed, amortized), then one ``run_matrix`` call exploding the
  windows into per-window work units fanned over 8 pool workers
  (:mod:`repro.harness.parallel`). End-to-end wall-clock of the whole
  matrix call — the window-parallel regime the PR 10 scheduler
  targets.

``run_all_regimes`` additionally measures the **interpreter** tier
(raw functional ``execute()`` throughput) and the **warming** tier
(:func:`measure_warming_rate` — the fused functional-warming loop on
the far-memory pointer chase, the rate that bounds every sampled
figure's chain build) so ``repro bench --all`` covers every execution
tier in one summary.
"""

from __future__ import annotations

import cProfile
import dataclasses
import io
import pstats
import time
from dataclasses import dataclass

from repro.uarch.config import FOUR_WIDE, MachineConfig
from repro.uarch.core import Core
from repro.uarch.stats import RunStats
from repro.workloads import registry


@dataclass(frozen=True)
class BenchRegime:
    """One self-benchmark configuration: workload + machine + mode."""

    name: str
    workload: str
    scale: float
    mode: str  # "base" or "slice"
    config: MachineConfig
    description: str
    #: Sampled-regime knobs (:mod:`repro.harness.fastforward`): run the
    #: first ``fast_forward`` instructions functionally (restoring the
    #: detailed core from a warmed snapshot) and measure ``sample``
    #: committed instructions. 0/0 = full detailed run.
    fast_forward: int = 0
    sample: int = 0
    #: Multi-region sampling: ``sample_regions >= 2`` runs that many
    #: periodic detailed windows along a snapshot chain built fresh
    #: in-memory each round (the chain build IS the regime's cost —
    #: no store amortization, unlike the single-snapshot regime).
    sample_regions: int = 0
    sample_period: int = 0
    #: Window-level parallelism (``>= 2``): run the multi-region
    #: request through :func:`~repro.harness.parallel.run_matrix` with
    #: this many pool workers, windows exploded into parallel work
    #: units over a *prebuilt* (untimed, amortized) snapshot chain —
    #: the window-parallel regime's cost model, complementing the
    #: one-shot in-memory chain build of the serial multi-region
    #: regime.
    window_jobs: int = 0

    def build_workload(self):
        return registry.build(self.workload, scale=self.scale)

    def build_core(self, workload=None, **overrides) -> Core:
        """Build a Core; pass a prebuilt *workload* to share its Program
        (and therefore the program-wide fused-segment cache) across
        rounds — a fresh build would re-pay segment warmup every time.

        For a sampled regime, the warmed snapshot is fetched (or built)
        here — construction is untimed in :func:`run_regime`, matching
        the amortized case where a sweep shares one snapshot. Pass a
        prebuilt ``snapshot=`` override to skip even the store lookup.
        """
        if workload is None:
            workload = self.build_workload()
        kwargs = dict(
            memory_image=workload.memory_image,
            memory_normalized=True,
            region=workload.region,
            workload_name=workload.name,
        )
        if self.mode == "slice":
            kwargs["slices"] = tuple(workload.slices)
        if self.fast_forward > 0 or self.sample > 0:
            from repro.harness.fastforward import ensure_snapshot, sample_plan

            region, warmup = sample_plan(self.sample)
            if region is not None:
                kwargs["region"] = region
            kwargs["warmup"] = warmup
            if self.fast_forward > 0 and "snapshot" not in overrides:
                kwargs["snapshot"], _ = ensure_snapshot(
                    workload, self.config, self.fast_forward
                )
        kwargs.update(overrides)
        return Core(workload.program, self.config, **kwargs)

    def covered_insts(self, stats: RunStats) -> int:
        """Instructions the run advanced through the program: the
        fast-forwarded prefix, the detailed-warming discard window, and
        the measured region. The honest numerator for a sampled
        regime's throughput (the denominator still times only
        ``run()``; the shared snapshot is amortized across a sweep).

        For a multi-region regime the prefix term is the chain *span*
        (the deepest window's prefix — all the chained build
        executes), not the per-window ``ff_insts`` sum. With an
        explicit ``sample_period`` the span is closed-form from the
        schedule, which also covers window-parallel aggregates: a
        :func:`~repro.harness.parallel.run_matrix` aggregate sums each
        window's own prefix into ``ff_insts`` (the windows never see
        the chain as one object), so trusting ``ff_insts`` there would
        inflate the rate quadratically. Without an explicit period the
        serial runner's span rewrite (:func:`_run_multi_region`) is
        trusted as before.
        """
        if self.sample_regions >= 2:
            from repro.harness.fastforward import sample_plan

            _region, warmup = sample_plan(self.sample)
            regions_run = stats.sample_regions or self.sample_regions
            if self.sample_period > 0:
                period = max(self.sample_period, warmup + self.sample)
                span = self.fast_forward + (regions_run - 1) * period
            else:
                span = stats.ff_insts
            return span + regions_run * warmup + stats.committed
        if self.fast_forward > 0 or self.sample > 0:
            from repro.harness.fastforward import sample_plan

            _region, warmup = sample_plan(self.sample)
            return stats.ff_insts + warmup + stats.committed
        return stats.committed


REGIMES: dict[str, BenchRegime] = {
    "balanced": BenchRegime(
        name="balanced",
        workload="vpr",
        scale=0.05,
        mode="slice",
        config=FOUR_WIDE,
        description="slice-assisted vpr, default machine (fetch-busy)",
    ),
    "memory_bound": BenchRegime(
        name="memory_bound",
        workload="mcf",
        scale=0.2,
        mode="base",
        # A small window bounds the wrong-path churn a miss can trigger,
        # and a ~1µs-class miss latency (3000 cycles at a few GHz —
        # remote/disaggregated memory) makes idle miss-wait dominate.
        config=dataclasses.replace(
            FOUR_WIDE,
            name="far-memory",
            memory_latency=3000,
            window_entries=32,
        ),
        description="base mcf, far-memory machine (miss-wait dominated)",
    ),
    "slice_heavy": BenchRegime(
        name="slice_heavy",
        workload="vpr",
        scale=0.1,
        mode="slice",
        # Twice the helper contexts: forks land on an idle context far
        # more often, so activation/release, per-slice journaling, and
        # correlator retire traffic all scale up.
        config=dataclasses.replace(
            FOUR_WIDE, name="8-context", thread_contexts=8
        ),
        description="slice-assisted vpr, 8 thread contexts (fork churn)",
    ),
    "sampled": BenchRegime(
        name="sampled",
        workload="mcf",
        scale=0.5,
        mode="base",
        config=FOUR_WIDE,
        # 20k instructions fast-forwarded functionally (with cache /
        # predictor warming), then a 400-inst detailed discard window
        # and a 4k-inst measured region — the sampled-simulation
        # regime, where the functional tier and snapshot restore carry
        # most of the program.
        fast_forward=20_000,
        sample=4_000,
        description=(
            "sampled mcf: 20k-inst warmed fast-forward + 4k-inst "
            "measured region"
        ),
    ),
    "sampled_multi": BenchRegime(
        name="sampled_multi",
        workload="mcf",
        scale=4.0,
        mode="base",
        config=FOUR_WIDE,
        # Eight 2k-inst windows every 25k instructions, snapshot chain
        # built fresh in-memory each round: the multi-region regime,
        # where the fused warming tier carries the inter-window gaps
        # and the detailed core only runs the windows. Timing includes
        # the chain build — this is the one-shot (unamortized) cost of
        # a multi-region sampled run.
        sample=2_000,
        sample_regions=8,
        sample_period=25_000,
        description=(
            "multi-region mcf: 8 x 2k-inst windows along a fresh "
            "in-memory snapshot chain"
        ),
    ),
    "sampled_parallel": BenchRegime(
        name="sampled_parallel",
        workload="mcf",
        scale=4.0,
        mode="base",
        config=FOUR_WIDE,
        # The same 8-window schedule as sampled_multi, but measured the
        # way a window-parallel sweep runs it: chain prebuilt into the
        # snapshot store (untimed — a sweep amortizes it), then one
        # run_matrix call fanning the 8 windows over 8 pool workers.
        # Wall-clock is the whole matrix call, so the rate is honest
        # end-to-end window-parallel throughput (pool spawn included).
        sample=2_000,
        sample_regions=8,
        sample_period=25_000,
        window_jobs=8,
        description=(
            "window-parallel mcf: 8 x 2k-inst windows fanned over 8 "
            "workers, prebuilt chain"
        ),
    ),
}


def _run_multi_region(regime: BenchRegime, workload) -> tuple[RunStats, float]:
    """One timed multi-region run: fresh in-memory chain build plus
    every detailed window.

    The snapshot store is disabled so each round pays the full chained
    fast-forward (that is the regime's cost model: the one-shot,
    unamortized multi-region run). The aggregate's ``ff_insts`` is
    rewritten to the chain *span* — the deepest prefix, which is all
    the incremental build executes — so ``covered_insts`` stays honest.
    """
    from repro.harness.fastforward import (
        SnapshotStore,
        build_sample_plan,
        iter_chain,
    )
    from repro.uarch.stats import aggregate_stats

    plan = build_sample_plan(
        workload.region,
        regime.fast_forward,
        regime.sample,
        regime.sample_regions,
        regime.sample_period,
    )
    store = SnapshotStore(enabled=False)
    per_region: list[RunStats] = []
    span = 0
    start = time.perf_counter()
    for snapshot, _hit in iter_chain(
        workload, regime.config, plan.depths, store=store
    ):
        if (
            snapshot is not None
            and snapshot.executed < snapshot.ff_insts
            and per_region
        ):
            break  # program halted before this window's start
        kwargs = dict(
            memory_image=workload.memory_image,
            memory_normalized=True,
            region=plan.sample,
            warmup=plan.warmup,
            workload_name=workload.name,
            snapshot=snapshot,
        )
        if regime.mode == "slice":
            kwargs["slices"] = tuple(workload.slices)
        stats = Core(workload.program, regime.config, **kwargs).run()
        if snapshot is not None:
            stats.ff_insts = snapshot.executed
            span = snapshot.executed
        per_region.append(stats)
    elapsed = time.perf_counter() - start
    total = aggregate_stats(per_region)
    total.ff_insts = span
    return total, elapsed


def _bench_request(regime: BenchRegime):
    """The :class:`~repro.harness.parallel.RunRequest` equivalent of
    *regime* (window-parallel regimes run through ``run_matrix``)."""
    from repro.harness.parallel import RunRequest

    return RunRequest(
        workload=regime.workload,
        scale=regime.scale,
        mode=regime.mode,
        config=regime.config.name,
        fast_forward=regime.fast_forward,
        sample=regime.sample,
        sample_regions=regime.sample_regions,
        sample_period=regime.sample_period,
    )


def _run_window_parallel(regime: BenchRegime) -> tuple[RunStats, float]:
    """One timed window-parallel multi-region run.

    The snapshot chain is prebuilt into the store first, *untimed* —
    the amortized case a sweep lives in (idempotent: rounds after the
    first are pure store hits). The timed region is one whole
    ``run_matrix`` call with the run cache disabled: window explosion,
    pool fan-out over ``regime.window_jobs`` workers, snapshot restore
    per window, and depth-order reassembly — end-to-end wall-clock,
    which is exactly what :meth:`BenchRegime.covered_insts` divides by.
    """
    from repro.harness.cache import RunCache
    from repro.harness.fastforward import prebuild_snapshots
    from repro.harness.parallel import run_matrix

    request = _bench_request(regime)
    prebuild_snapshots([request], jobs=regime.window_jobs)
    start = time.perf_counter()
    stats_list = run_matrix(
        [request],
        jobs=regime.window_jobs,
        cache=RunCache(enabled=False),
        window_jobs=regime.window_jobs,
    )
    elapsed = time.perf_counter() - start
    return stats_list[0], elapsed


def run_regime(
    regime: BenchRegime, workload=None, **overrides
) -> tuple[RunStats, float]:
    """Run one simulation of *regime*, returning (stats, wall seconds).

    Core construction (workload build, slice load, snapshot fetch) is
    excluded from the timing; only ``run()`` is measured — except for
    a multi-region regime, whose timing deliberately includes its
    fresh in-memory chain build (see :func:`_run_multi_region`), and a
    window-parallel regime, which times one whole ``run_matrix`` call
    over a prebuilt chain (see :func:`_run_window_parallel`).
    """
    if regime.window_jobs >= 2:
        return _run_window_parallel(regime)
    if regime.sample_regions >= 2:
        if workload is None:
            workload = regime.build_workload()
        return _run_multi_region(regime, workload)
    core = regime.build_core(workload=workload, **overrides)
    start = time.perf_counter()
    stats = core.run()
    elapsed = time.perf_counter() - start
    if core.snapshot is not None:
        stats.ff_insts = core.snapshot.executed
    return stats, elapsed


def best_rate(
    regime: BenchRegime, rounds: int = 3, **overrides
) -> tuple[float, RunStats]:
    """Best-of-*rounds* simulated-instructions-per-second for *regime*.

    Machine noise only ever slows a round down, so best-of-N converges
    on the true cost. All rounds share one workload so fused segments
    compiled in round 1 are cache hits afterwards (the steady state a
    long experiment matrix sees). A sampled regime likewise shares one
    warmed snapshot across rounds, and its rate counts every
    instruction the run covered (prefix + discard window + region).
    """
    # A window-parallel regime's workloads are built inside the pool
    # workers; building one here would only add dead weight.
    workload = None if regime.window_jobs >= 2 else regime.build_workload()
    if regime.fast_forward > 0 and "snapshot" not in overrides:
        from repro.harness.fastforward import ensure_snapshot

        overrides = dict(overrides)
        overrides["snapshot"], _ = ensure_snapshot(
            workload, regime.config, regime.fast_forward
        )
    best = 0.0
    best_stats = None
    for _ in range(rounds):
        stats, elapsed = run_regime(regime, workload=workload, **overrides)
        rate = regime.covered_insts(stats) / elapsed
        if rate > best:
            best, best_stats = rate, stats
    return best, best_stats


def measure_interpreter_rate(
    rounds: int = 3, budget: int = 200_000
) -> tuple[float, int]:
    """Best-of-*rounds* functional ``execute()`` throughput
    (executions / wall second) on vpr's instruction stream — the
    interpreter-tier regime of ``BENCH_throughput.json``. Returns
    ``(rate, executed_per_round)``."""
    from repro.arch.interpreter import execute
    from repro.arch.memory import Memory
    from repro.arch.state import ThreadState

    workload = registry.build("vpr", scale=0.2)
    program = workload.program

    def one_round() -> tuple[int, float]:
        memory = Memory(
            workload.memory_image, journaling=False, normalized=True
        )
        state = ThreadState(memory, entry_pc=program.entry_pc)
        executed = 0
        start = time.perf_counter()
        while executed < budget and not state.halted:
            inst = program.at(state.pc)
            if inst is None:
                break
            execute(inst, state)
            executed += 1
        return executed, time.perf_counter() - start

    one_round()  # warm the per-instruction closures
    best = 0.0
    executed = 0
    for _ in range(rounds):
        executed, elapsed = one_round()
        best = max(best, executed / elapsed)
    return best, executed


#: The warming-regime measurement: the functional-warming loop on the
#: pointer-chasing workload whose miss-per-instruction rate dominates
#: every sampled figure's chain build (mcf at a far-memory footprint —
#: the working set dwarfs L2, so ~1 in 10 instructions takes the full
#: warm miss path). Scale 50 keeps the 2M-instruction measured span
#: well inside the region (no halt).
WARMING_WORKLOAD = "mcf"
WARMING_SCALE = 50.0
WARMING_INSTS = 2_000_000
#: Instructions advanced before timing starts: one pass over the hot
#: loops so every warm trace is compiled and bound before the clock
#: runs (the steady state a chain build spends its life in).
WARMING_PRIME_INSTS = 10_000


def _warming_run():
    """A fresh warming pass over the warming-regime workload, primed
    past trace compilation. Returns the live run, ready to time."""
    from repro.harness.fastforward import _LiveRun

    workload = registry.build(WARMING_WORKLOAD, scale=WARMING_SCALE)
    run = _LiveRun(workload, FOUR_WIDE, warming=True)
    run.advance(WARMING_PRIME_INSTS)
    return run


def measure_warming_rate(
    rounds: int = 3, insts: int = WARMING_INSTS
) -> tuple[float, int]:
    """Best-of-*rounds* functional-warming throughput (warmed
    instructions / wall second) on the far-memory pointer chase — the
    ``warming`` regime of ``BENCH_throughput.json``.

    Each round is a fresh live run (cold caches, cold stream table)
    advanced *insts* instructions past the priming prefix, so the rate
    is the cost a sampled figure's chain build actually pays. Returns
    ``(rate, insts_per_round)``.
    """
    best = 0.0
    for _ in range(rounds):
        run = _warming_run()
        start = time.perf_counter()
        run.advance(WARMING_PRIME_INSTS + insts)
        elapsed = time.perf_counter() - start
        best = max(best, insts / elapsed)
    return best, insts


def profile_warming(
    top: int = 25, insts: int = WARMING_INSTS
) -> tuple[float, str]:
    """One warming round under ``cProfile``; returns (rate, report).

    The rate is measured under the profiler (2-3x slower than real) —
    use the report for *relative* attribution (trace bodies vs. the
    warm miss path vs. the driver) and :func:`measure_warming_rate`
    for the honest number.
    """
    run = _warming_run()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    run.advance(WARMING_PRIME_INSTS + insts)
    profiler.disable()
    elapsed = time.perf_counter() - start
    buf = io.StringIO()
    ps = pstats.Stats(profiler, stream=buf)
    ps.sort_stats("tottime").print_stats(top)
    header = (
        "cProfile, regime 'warming': functional-warming loop, "
        "far-memory pointer chase\n"
        f"workload={WARMING_WORKLOAD} scale={WARMING_SCALE:g} "
        f"machine={FOUR_WIDE.name} (warming is untimed; geometry only)\n"
        f"{insts:,} warmed instructions in {elapsed:.2f}s under the "
        "profiler (rates under cProfile are 2-3x pessimistic; "
        "sorted by tottime — self time is what the warm loop "
        "optimizes)\n"
    )
    return insts / elapsed, header + buf.getvalue()


def run_all_regimes(rounds: int = 3) -> dict:
    """Measure every regime (core regimes + the interpreter tier) in
    one pass — the ``repro bench --all`` backend. Returns a plain
    JSON-serializable mapping."""
    results: dict[str, dict] = {}
    for name, regime in REGIMES.items():
        rate, stats = best_rate(regime, rounds=rounds)
        results[name] = {
            "description": regime.description,
            "workload": regime.workload,
            "scale": regime.scale,
            "mode": regime.mode,
            "machine": regime.config.name,
            "instructions_per_second": round(rate),
            "committed_per_run": stats.committed,
            "best_of_rounds": rounds,
        }
        if regime.fast_forward or regime.sample_regions >= 2:
            results[name]["fast_forward"] = regime.fast_forward
            results[name]["sample"] = regime.sample
            results[name]["ff_insts"] = stats.ff_insts
        if regime.sample_regions >= 2:
            results[name]["sample_regions"] = regime.sample_regions
            results[name]["sample_period"] = regime.sample_period
            results[name]["regions_run"] = stats.sample_regions
        if regime.window_jobs >= 2:
            results[name]["window_jobs"] = regime.window_jobs
    rate, executed = measure_interpreter_rate(rounds=rounds)
    results["interpreter"] = {
        "description": "functional execute() tier, vpr instruction stream",
        "workload": "vpr",
        "scale": 0.2,
        "mode": "functional",
        "machine": "-",
        "instructions_per_second": round(rate),
        "committed_per_run": executed,
        "best_of_rounds": rounds,
    }
    rate, insts = measure_warming_rate(rounds=rounds)
    results["warming"] = {
        "description": (
            "functional-warming loop, far-memory pointer chase (fused "
            "warm tier)"
        ),
        "workload": WARMING_WORKLOAD,
        "scale": WARMING_SCALE,
        "mode": "warming",
        "machine": FOUR_WIDE.name,
        "instructions_per_second": round(rate),
        "committed_per_run": insts,
        "best_of_rounds": rounds,
    }
    return results


def render_all_regimes(results: dict) -> str:
    """Fixed-width summary of :func:`run_all_regimes` output."""
    lines = [
        "simulator self-benchmark, all regimes "
        f"(best of {next(iter(results.values()))['best_of_rounds']} rounds)",
        "",
        f"{'regime':14s} {'inst/s':>12s} {'insts/run':>10s}  description",
        "-" * 76,
    ]
    for name, entry in results.items():
        lines.append(
            f"{name:14s} {entry['instructions_per_second']:>12,d} "
            f"{entry['committed_per_run']:>10,d}  {entry['description']}"
        )
    return "\n".join(lines)


def profile_regime(
    regime: BenchRegime, top: int = 25, **overrides
) -> tuple[RunStats, str]:
    """Run *regime* once under ``cProfile``; return (stats, report).

    The report is the top-*top* entries by cumulative time — the
    standard first question ("which subsystem owns the wall clock")
    for a simulator perf regression.
    """
    profiler = cProfile.Profile()
    if regime.sample_regions >= 2:
        workload = regime.build_workload()
        profiler.enable()
        stats, _elapsed = _run_multi_region(regime, workload)
        profiler.disable()
    else:
        core = regime.build_core(**overrides)
        profiler.enable()
        stats = core.run()
        profiler.disable()
    buf = io.StringIO()
    ps = pstats.Stats(profiler, stream=buf)
    ps.sort_stats("cumulative").print_stats(top)
    header = (
        f"cProfile, regime {regime.name!r}: {regime.description}\n"
        f"workload={regime.workload} scale={regime.scale} "
        f"mode={regime.mode} machine={regime.config.name}\n"
        f"{stats.committed} committed instructions, {stats.cycles} cycles\n"
    )
    return stats, header + buf.getvalue()

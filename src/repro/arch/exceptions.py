"""Architectural fault kinds.

Faults never raise Python exceptions during simulation: wrong-path code
routinely dereferences garbage, and the paper relies on faults to
terminate slices ("linked list traversals will automatically terminate
when they dereference a null pointer", Section 3.2). Faults are data.
"""

from __future__ import annotations

import enum


class Fault(enum.Enum):
    """Outcome flag attached to an executed instruction."""

    NONE = "none"
    NULL_DEREF = "null-deref"  # load/store into the unmapped null page
    BAD_PC = "bad-pc"  # control transferred outside the program
    HALT = "halt"  # program executed HALT


#: Addresses below this are the "null page": touching them faults.
NULL_PAGE_LIMIT = 0x100

"""Functional architecture: journaled state and the instruction executor."""

from repro.arch.exceptions import Fault, NULL_PAGE_LIMIT
from repro.arch.interpreter import ExecResult, execute, run_functional
from repro.arch.memory import MASK64, Memory, to_signed
from repro.arch.regfile import RegFile
from repro.arch.state import Checkpoint, ThreadState

__all__ = [
    "Checkpoint",
    "ExecResult",
    "Fault",
    "MASK64",
    "Memory",
    "NULL_PAGE_LIMIT",
    "RegFile",
    "ThreadState",
    "execute",
    "run_functional",
    "to_signed",
]

"""Architectural register file with an undo journal.

32 integer registers; index 31 is hardwired to zero. As with
:class:`~repro.arch.memory.Memory`, writes are journaled so speculative
(wrong-path) execution can be rolled back.
"""

from __future__ import annotations

from repro.isa.instruction import ZERO_REG
from repro.arch.memory import to_signed


class RegFile:
    """Journaled architectural register file."""

    __slots__ = ("_regs", "_journal", "journaling")

    def __init__(self, journaling: bool = True):
        self._regs = [0] * 32
        self._journal: list[tuple[int, int]] = []
        self.journaling = journaling

    def read(self, index: int) -> int:
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        """Write *value* (wrapped to signed 64-bit); r31 writes vanish."""
        if index == ZERO_REG:
            return
        if self.journaling:
            self._journal.append((index, self._regs[index]))
        self._regs[index] = to_signed(value)

    def mark(self) -> int:
        return len(self._journal)

    def rollback(self, mark: int) -> None:
        journal = self._journal
        regs = self._regs
        while len(journal) > mark:
            index, old = journal.pop()
            regs[index] = old

    def commit(self, mark: int = 0) -> None:
        del self._journal[mark:]

    def values(self) -> list[int]:
        """Return a copy of all 32 register values."""
        return list(self._regs)

    def load_values(self, values: dict[int, int]) -> None:
        """Bulk-set registers without journaling (thread initialization)."""
        for index, value in values.items():
            if index != ZERO_REG:
                self._regs[index] = to_signed(value)

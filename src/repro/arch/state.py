"""Per-thread architectural state and speculation checkpoints.

A :class:`ThreadState` owns a register file and a PC and shares a
:class:`~repro.arch.memory.Memory` with other threads (SMT threads share
the data memory image; helper-thread slices perform no stores, so only
the main thread journals memory).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.memory import Memory
from repro.arch.regfile import RegFile


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """A speculation checkpoint: journal marks plus the correct next PC."""

    reg_mark: int
    mem_mark: int
    pc: int


class ThreadState:
    """Architectural state of one hardware thread context."""

    __slots__ = ("regs", "memory", "pc", "halted")

    def __init__(self, memory: Memory, entry_pc: int = 0, journaling: bool = True):
        self.regs = RegFile(journaling=journaling)
        self.memory = memory
        self.pc = entry_pc
        self.halted = False

    def checkpoint(self, resume_pc: int) -> Checkpoint:
        """Capture a checkpoint; *resume_pc* is the PC to restore on rollback."""
        return Checkpoint(self.regs.mark(), self.memory.mark(), resume_pc)

    def rollback(self, checkpoint: Checkpoint) -> None:
        """Undo all speculative writes made after *checkpoint*."""
        self.regs.rollback(checkpoint.reg_mark)
        self.memory.rollback(checkpoint.mem_mark)
        self.pc = checkpoint.pc
        self.halted = False

    def commit_journals(self) -> None:
        """Discard undo history (state observed so far becomes final)."""
        self.regs.commit()
        self.memory.commit()

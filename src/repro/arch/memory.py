"""Sparse word-addressed data memory with an undo journal.

Memory stores 64-bit words at 8-byte-aligned byte addresses. Reads of
unwritten locations return zero. Writes can be journaled so the
out-of-order core can roll back stores executed down a mispredicted
path (the simulator executes functionally at fetch time).
"""

from __future__ import annotations

#: 64-bit wrap mask.
MASK64 = (1 << 64) - 1

#: Sign bit for converting back to Python signed ints.
SIGN64 = 1 << 63


def to_signed(value: int) -> int:
    """Wrap *value* to 64 bits and interpret as two's-complement signed."""
    value &= MASK64
    return value - (1 << 64) if value & SIGN64 else value


class Memory:
    """Sparse data memory.

    The journal records ``(address, old_value)`` pairs; a *mark* is a
    journal length, and :meth:`rollback` undoes all writes made after a
    mark, in reverse order.
    """

    __slots__ = ("_words", "_journal", "journaling")

    def __init__(
        self,
        image: dict[int, int] | None = None,
        journaling: bool = True,
        normalized: bool = False,
    ):
        """*normalized* promises every key of *image* is already 8-byte
        aligned and every value already signed — true of
        :meth:`snapshot` output — so a warmed-state restore copies the
        dict instead of re-normalizing millions of words."""
        self.journaling = journaling
        if image and normalized:
            self._words: dict[int, int] = dict(image)
        else:
            self._words = {}
            if image:
                for addr, value in image.items():
                    self._words[addr & ~7] = to_signed(value)
        self._journal: list[tuple[int, int | None]] = []

    def load(self, addr: int) -> int:
        """Read the word at *addr* (aligned down); unmapped reads are 0."""
        return self._words.get(addr & ~7, 0)

    def store(self, addr: int, value: int) -> None:
        """Write *value* at *addr* (aligned down), journaling the old value.

        The journal records ``None`` when the address was previously
        unmapped so rollback restores true absence, not an explicit zero.
        """
        addr &= ~7
        if self.journaling:
            self._journal.append((addr, self._words.get(addr)))
        self._words[addr] = to_signed(value)

    def mark(self) -> int:
        """Return a checkpoint token for :meth:`rollback`."""
        return len(self._journal)

    def rollback(self, mark: int) -> None:
        """Undo every store made after *mark*."""
        journal = self._journal
        words = self._words
        while len(journal) > mark:
            addr, old = journal.pop()
            if old is None:
                words.pop(addr, None)
            else:
                words[addr] = old

    def commit(self, mark: int = 0) -> None:
        """Discard journal entries at or after *mark* (writes become final)."""
        del self._journal[mark:]

    @property
    def journal_length(self) -> int:
        return len(self._journal)

    def snapshot(self) -> dict[int, int]:
        """Return a copy of the current memory contents (for tests)."""
        return dict(self._words)

"""Functional executor for the repro ISA.

:func:`execute` applies one instruction to a :class:`ThreadState` and
reports what happened. It is *wrong-path safe*: no input state can make
it raise — division by zero yields zero, unmapped loads yield zero, and
null-page accesses are reported as faults rather than raised, because
the out-of-order core executes instructions functionally at fetch time,
including down mispredicted paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.exceptions import NULL_PAGE_LIMIT, Fault
from repro.arch.memory import to_signed
from repro.arch.state import ThreadState
from repro.isa.instruction import Instruction
from repro.isa.opcodes import INSTRUCTION_BYTES, Opcode

#: 64-bit mask used for logical shifts.
_MASK64 = (1 << 64) - 1
_MIN64 = -(1 << 63)
_MAX64 = (1 << 63) - 1


@dataclass(slots=True)
class ExecResult:
    """Observable outcome of executing one instruction.

    Attributes:
        value: value written to the destination register (or ``None``).
        addr: effective byte address for loads/stores (or ``None``).
        store_value: value stored, for stores.
        taken: branch direction (``None`` for non-branches).
        next_pc: architecturally correct next PC.
        fault: fault flag (:data:`Fault.NONE` if none).
    """

    value: int | None = None
    addr: int | None = None
    store_value: int | None = None
    taken: bool | None = None
    next_pc: int = 0
    fault: Fault = Fault.NONE


def execute(inst: Instruction, state: ThreadState) -> ExecResult:
    """Execute *inst* against *state*, updating registers/memory/PC.

    ``state.pc`` must equal ``inst.pc`` conceptually; the caller controls
    actual fetch redirection (it may deliberately steer down a predicted
    wrong path), so this function only *returns* the correct ``next_pc``
    and also assigns it to ``state.pc``.
    """
    op = inst.op
    regs = state.regs
    result = ExecResult(next_pc=inst.pc + INSTRUCTION_BYTES)

    if op in _ALU_OPS:
        a = regs.read(inst.ra)
        b = regs.read(inst.rb) if inst.rb is not None else inst.imm
        value = _ALU_OPS[op](a, b)
        if not _MIN64 <= value <= _MAX64:
            value = to_signed(value)
        result.value = value
        regs.write(inst.rd, value)
    elif op is Opcode.LI:
        result.value = inst.imm
        regs.write(inst.rd, inst.imm)
    elif op is Opcode.MOV:
        result.value = regs.read(inst.ra)
        regs.write(inst.rd, result.value)
    elif op in _CMOV_COND:
        cond = _CMOV_COND[op](regs.read(inst.ra))
        result.value = regs.read(inst.rb) if cond else regs.read(inst.rd)
        regs.write(inst.rd, result.value)
    elif op is Opcode.LD:
        addr = regs.read(inst.ra) + inst.imm
        result.addr = addr
        if addr < NULL_PAGE_LIMIT:
            result.fault = Fault.NULL_DEREF
            result.value = 0
        else:
            result.value = state.memory.load(addr)
        regs.write(inst.rd, result.value)
    elif op is Opcode.ST:
        addr = regs.read(inst.ra) + inst.imm
        result.addr = addr
        result.store_value = regs.read(inst.rd)
        if addr < NULL_PAGE_LIMIT:
            result.fault = Fault.NULL_DEREF
        else:
            state.memory.store(addr, result.store_value)
    elif op in _BRANCH_COND:
        taken = _BRANCH_COND[op](regs.read(inst.ra))
        result.taken = taken
        if taken:
            result.next_pc = inst.target
    elif op is Opcode.BR:
        result.taken = True
        result.next_pc = inst.target
    elif op is Opcode.CALL:
        result.taken = True
        result.value = inst.pc + INSTRUCTION_BYTES
        regs.write(inst.rd, result.value)
        result.next_pc = inst.target
    elif op is Opcode.CALLR:
        result.taken = True
        target = regs.read(inst.ra)
        result.value = inst.pc + INSTRUCTION_BYTES
        regs.write(inst.rd, result.value)
        result.next_pc = target
    elif op in (Opcode.JR, Opcode.RET):
        result.taken = True
        result.next_pc = regs.read(inst.ra)
    elif op is Opcode.HALT:
        result.fault = Fault.HALT
        result.next_pc = inst.pc  # spin; the core stops the thread
    elif op in (Opcode.NOP, Opcode.FORK):
        pass  # FORK is architecturally a no-op (Section 4.2)
    else:  # pragma: no cover - all opcodes are handled above
        raise NotImplementedError(f"opcode {op}")

    state.pc = result.next_pc
    return result


def _div(a: int, b: int) -> int:
    """Truncating signed division; division by zero yields zero."""
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


_ALU_OPS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SLL: lambda a, b: a << (b & 63),
    Opcode.SRL: lambda a, b: (a & _MASK64) >> (b & 63),
    Opcode.SRA: lambda a, b: a >> (b & 63),
    Opcode.CMPEQ: lambda a, b: int(a == b),
    Opcode.CMPLT: lambda a, b: int(a < b),
    Opcode.CMPLE: lambda a, b: int(a <= b),
    Opcode.CMPULT: lambda a, b: int((a & _MASK64) < (b & _MASK64)),
    Opcode.S4ADD: lambda a, b: (a << 2) + b,
    Opcode.S8ADD: lambda a, b: (a << 3) + b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: _div,
}

_CMOV_COND = {
    Opcode.CMOVEQ: lambda a: a == 0,
    Opcode.CMOVNE: lambda a: a != 0,
    Opcode.CMOVLT: lambda a: a < 0,
    Opcode.CMOVGE: lambda a: a >= 0,
}

_BRANCH_COND = {
    Opcode.BEQ: lambda a: a == 0,
    Opcode.BNE: lambda a: a != 0,
    Opcode.BLT: lambda a: a < 0,
    Opcode.BGE: lambda a: a >= 0,
    Opcode.BLE: lambda a: a <= 0,
    Opcode.BGT: lambda a: a > 0,
}


def run_functional(
    program,
    state: ThreadState,
    max_instructions: int = 1_000_000,
):
    """Run *program* purely functionally from ``state.pc``.

    Follows correct paths only (no speculation). Yields
    ``(Instruction, ExecResult)`` pairs; stops at HALT, a bad PC, or the
    instruction budget. Used by the profiler, the trace-based automatic
    slice builder, and tests.
    """
    for _ in range(max_instructions):
        inst = program.at(state.pc)
        if inst is None:
            return
        result = execute(inst, state)
        yield inst, result
        if result.fault is Fault.HALT:
            return

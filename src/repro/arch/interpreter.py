"""Functional executor for the repro ISA.

:func:`execute` applies one instruction to a :class:`ThreadState` and
reports what happened. It is *wrong-path safe*: no input state can make
it raise — division by zero yields zero, unmapped loads yield zero, and
null-page accesses are reported as faults rather than raised, because
the out-of-order core executes instructions functionally at fetch time,
including down mispredicted paths.

Execution is driven by a precomputed opcode dispatch table: the first
time a static instruction executes, :func:`_compile` specializes a
closure for it (operand register indices, immediate, branch target and
fall-through PC prebound as locals) and caches it on the instruction.
Subsequent dynamic executions of the same static instruction — the
simulator's single hottest path — run the closure directly instead of
re-decoding. Compilation is deliberately lazy: assembly (PC placement,
label resolution) and the slice optimizer's register renaming all
mutate instructions *before* their first execution, and
``Instruction.__copy__`` drops the cache when the optimizer clones an
already-executed instruction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.exceptions import NULL_PAGE_LIMIT, Fault
from repro.arch.memory import to_signed
from repro.arch.state import ThreadState
from repro.isa.instruction import ZERO_REG, Instruction
from repro.isa.opcodes import INSTRUCTION_BYTES, Opcode

#: 64-bit mask used for logical shifts.
_MASK64 = (1 << 64) - 1
_MIN64 = -(1 << 63)
_MAX64 = (1 << 63) - 1


@dataclass(slots=True)
class ExecResult:
    """Observable outcome of executing one instruction.

    Attributes:
        value: value written to the destination register (or ``None``).
        addr: effective byte address for loads/stores (or ``None``).
        store_value: value stored, for stores.
        taken: branch direction (``None`` for non-branches).
        next_pc: architecturally correct next PC.
        fault: fault flag (:data:`Fault.NONE` if none).
    """

    value: int | None = None
    addr: int | None = None
    store_value: int | None = None
    taken: bool | None = None
    next_pc: int = 0
    fault: Fault = Fault.NONE


def execute(inst: Instruction, state: ThreadState) -> ExecResult:
    """Execute *inst* against *state*, updating registers/memory/PC.

    ``state.pc`` must equal ``inst.pc`` conceptually; the caller controls
    actual fetch redirection (it may deliberately steer down a predicted
    wrong path), so this function only *returns* the correct ``next_pc``
    and also assigns it to ``state.pc``.
    """
    fn = inst._exec
    if fn is None:
        fn = inst._exec = _compile(inst)
    return fn(state)


def _div(a: int, b: int) -> int:
    """Truncating signed division; division by zero yields zero."""
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


_ALU_OPS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SLL: lambda a, b: a << (b & 63),
    Opcode.SRL: lambda a, b: (a & _MASK64) >> (b & 63),
    Opcode.SRA: lambda a, b: a >> (b & 63),
    Opcode.CMPEQ: lambda a, b: int(a == b),
    Opcode.CMPLT: lambda a, b: int(a < b),
    Opcode.CMPLE: lambda a, b: int(a <= b),
    Opcode.CMPULT: lambda a, b: int((a & _MASK64) < (b & _MASK64)),
    Opcode.S4ADD: lambda a, b: (a << 2) + b,
    Opcode.S8ADD: lambda a, b: (a << 3) + b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: _div,
}

_CMOV_COND = {
    Opcode.CMOVEQ: lambda a: a == 0,
    Opcode.CMOVNE: lambda a: a != 0,
    Opcode.CMOVLT: lambda a: a < 0,
    Opcode.CMOVGE: lambda a: a >= 0,
}

_BRANCH_COND = {
    Opcode.BEQ: lambda a: a == 0,
    Opcode.BNE: lambda a: a != 0,
    Opcode.BLT: lambda a: a < 0,
    Opcode.BGE: lambda a: a >= 0,
    Opcode.BLE: lambda a: a <= 0,
    Opcode.BGT: lambda a: a > 0,
}


# ----------------------------------------------------------------------
# Per-category closure factories. Each prebinds the instruction's
# operands and returns a ``run(state) -> ExecResult`` closure with
# semantics identical to the pre-dispatch-table interpreter (register
# writes wrap to signed 64-bit; r31 writes vanish).
# ----------------------------------------------------------------------


def _make_alu(inst: Instruction):
    fn = _ALU_OPS[inst.op]
    rd, ra, rb, imm = inst.rd, inst.ra, inst.rb, inst.imm
    next_pc = inst.pc + INSTRUCTION_BYTES
    dead = rd == ZERO_REG
    if rb is None:

        def run(state: ThreadState) -> ExecResult:
            regs = state.regs
            r = regs._regs
            value = fn(r[ra], imm)
            if value < _MIN64 or value > _MAX64:
                value = to_signed(value)
            if not dead:
                if regs.journaling:
                    regs._journal.append((rd, r[rd]))
                r[rd] = value
            state.pc = next_pc
            return ExecResult(value=value, next_pc=next_pc)

    else:

        def run(state: ThreadState) -> ExecResult:
            regs = state.regs
            r = regs._regs
            value = fn(r[ra], r[rb])
            if value < _MIN64 or value > _MAX64:
                value = to_signed(value)
            if not dead:
                if regs.journaling:
                    regs._journal.append((rd, r[rd]))
                r[rd] = value
            state.pc = next_pc
            return ExecResult(value=value, next_pc=next_pc)

    return run


def _make_li(inst: Instruction):
    rd, imm = inst.rd, inst.imm
    stored = to_signed(imm)
    next_pc = inst.pc + INSTRUCTION_BYTES
    dead = rd == ZERO_REG

    def run(state: ThreadState) -> ExecResult:
        if not dead:
            regs = state.regs
            r = regs._regs
            if regs.journaling:
                regs._journal.append((rd, r[rd]))
            r[rd] = stored
        state.pc = next_pc
        return ExecResult(value=imm, next_pc=next_pc)

    return run


def _make_mov(inst: Instruction):
    rd, ra = inst.rd, inst.ra
    next_pc = inst.pc + INSTRUCTION_BYTES
    dead = rd == ZERO_REG

    def run(state: ThreadState) -> ExecResult:
        regs = state.regs
        r = regs._regs
        value = r[ra]
        if not dead:
            if regs.journaling:
                regs._journal.append((rd, r[rd]))
            r[rd] = value
        state.pc = next_pc
        return ExecResult(value=value, next_pc=next_pc)

    return run


def _make_cmov(inst: Instruction):
    cond = _CMOV_COND[inst.op]
    rd, ra, rb = inst.rd, inst.ra, inst.rb
    next_pc = inst.pc + INSTRUCTION_BYTES
    dead = rd == ZERO_REG

    def run(state: ThreadState) -> ExecResult:
        regs = state.regs
        r = regs._regs
        value = r[rb] if cond(r[ra]) else r[rd]
        if not dead:
            if regs.journaling:
                regs._journal.append((rd, r[rd]))
            r[rd] = value
        state.pc = next_pc
        return ExecResult(value=value, next_pc=next_pc)

    return run


def _make_load(inst: Instruction):
    rd, ra, imm = inst.rd, inst.ra, inst.imm
    next_pc = inst.pc + INSTRUCTION_BYTES
    dead = rd == ZERO_REG

    def run(state: ThreadState) -> ExecResult:
        regs = state.regs
        r = regs._regs
        addr = r[ra] + imm
        if addr < NULL_PAGE_LIMIT:
            if not dead:
                if regs.journaling:
                    regs._journal.append((rd, r[rd]))
                r[rd] = 0
            state.pc = next_pc
            return ExecResult(
                value=0, addr=addr, next_pc=next_pc, fault=Fault.NULL_DEREF
            )
        value = state.memory.load(addr)
        if not dead:
            if regs.journaling:
                regs._journal.append((rd, r[rd]))
            r[rd] = value
        state.pc = next_pc
        return ExecResult(value=value, addr=addr, next_pc=next_pc)

    return run


def _make_store(inst: Instruction):
    rd, ra, imm = inst.rd, inst.ra, inst.imm
    next_pc = inst.pc + INSTRUCTION_BYTES

    def run(state: ThreadState) -> ExecResult:
        addr = state.regs._regs[ra] + imm
        store_value = state.regs._regs[rd]
        if addr < NULL_PAGE_LIMIT:
            state.pc = next_pc
            return ExecResult(
                addr=addr,
                store_value=store_value,
                next_pc=next_pc,
                fault=Fault.NULL_DEREF,
            )
        state.memory.store(addr, store_value)
        state.pc = next_pc
        return ExecResult(
            addr=addr, store_value=store_value, next_pc=next_pc
        )

    return run


def _make_cond_branch(inst: Instruction):
    cond = _BRANCH_COND[inst.op]
    ra = inst.ra
    target = inst.target
    fallthrough = inst.pc + INSTRUCTION_BYTES

    def run(state: ThreadState) -> ExecResult:
        taken = cond(state.regs._regs[ra])
        next_pc = target if taken else fallthrough
        state.pc = next_pc
        return ExecResult(taken=taken, next_pc=next_pc)

    return run


def _make_br(inst: Instruction):
    target = inst.target

    def run(state: ThreadState) -> ExecResult:
        state.pc = target
        return ExecResult(taken=True, next_pc=target)

    return run


def _make_call(inst: Instruction):
    rd = inst.rd
    target = inst.target
    link = inst.pc + INSTRUCTION_BYTES
    dead = rd == ZERO_REG

    def run(state: ThreadState) -> ExecResult:
        if not dead:
            regs = state.regs
            r = regs._regs
            if regs.journaling:
                regs._journal.append((rd, r[rd]))
            r[rd] = link
        state.pc = target
        return ExecResult(value=link, taken=True, next_pc=target)

    return run


def _make_callr(inst: Instruction):
    rd, ra = inst.rd, inst.ra
    link = inst.pc + INSTRUCTION_BYTES
    dead = rd == ZERO_REG

    def run(state: ThreadState) -> ExecResult:
        regs = state.regs
        r = regs._regs
        target = r[ra]
        if not dead:
            if regs.journaling:
                regs._journal.append((rd, r[rd]))
            r[rd] = link
        state.pc = target
        return ExecResult(value=link, taken=True, next_pc=target)

    return run


def _make_jr(inst: Instruction):
    ra = inst.ra

    def run(state: ThreadState) -> ExecResult:
        target = state.regs._regs[ra]
        state.pc = target
        return ExecResult(taken=True, next_pc=target)

    return run


def _make_halt(inst: Instruction):
    pc = inst.pc  # spin; the core stops the thread

    def run(state: ThreadState) -> ExecResult:
        state.pc = pc
        return ExecResult(next_pc=pc, fault=Fault.HALT)

    return run


def _make_nop(inst: Instruction):
    next_pc = inst.pc + INSTRUCTION_BYTES

    def run(state: ThreadState) -> ExecResult:
        state.pc = next_pc
        return ExecResult(next_pc=next_pc)

    return run


#: Opcode -> closure factory. FORK is architecturally a no-op
#: (Section 4.2); the core special-cases it at fetch.
_DISPATCH = {
    **{op: _make_alu for op in _ALU_OPS},
    **{op: _make_cmov for op in _CMOV_COND},
    **{op: _make_cond_branch for op in _BRANCH_COND},
    Opcode.LI: _make_li,
    Opcode.MOV: _make_mov,
    Opcode.LD: _make_load,
    Opcode.ST: _make_store,
    Opcode.BR: _make_br,
    Opcode.CALL: _make_call,
    Opcode.CALLR: _make_callr,
    Opcode.JR: _make_jr,
    Opcode.RET: _make_jr,
    Opcode.HALT: _make_halt,
    Opcode.NOP: _make_nop,
    Opcode.FORK: _make_nop,
}


def _compile(inst: Instruction):
    """Specialize an executor closure for one static instruction."""
    try:
        factory = _DISPATCH[inst.op]
    except KeyError:  # pragma: no cover - all opcodes are handled above
        raise NotImplementedError(f"opcode {inst.op}") from None
    return factory(inst)


def run_functional(
    program,
    state: ThreadState,
    max_instructions: int = 1_000_000,
):
    """Run *program* purely functionally from ``state.pc``.

    Follows correct paths only (no speculation). Yields
    ``(Instruction, ExecResult)`` pairs; stops at HALT, a bad PC, or the
    instruction budget. Used by the profiler, the trace-based automatic
    slice builder, and tests.
    """
    for _ in range(max_instructions):
        inst = program.at(state.pc)
        if inst is None:
            return
        result = execute(inst, state)
        yield inst, result
        if result.fault is Fault.HALT:
            return

"""Extended vpr analog: heap insertions *and* remove-min operations.

The registry's ``vpr`` workload distills the paper's running example
(the ``add_to_heap`` trickle-up of Figure 2). Real vpr's router also
pops the minimum (``get_heap_head``), whose trickle-*down* loop is a
second problem region: per level it dereferences both children (problem
loads) and makes two data-dependent decisions — which child is smaller,
and whether the descent continues — both unbiased. This module builds
the combined workload with two cooperating slices, matching the
complexity of the paper's actual vpr slice (Table 3: 5 predictions, 3
kills, loops on both sides).

Round structure: routing-cost phase -> insert(cost) -> second compute
phase (the pop slice's fork point) -> remove-min -> accumulate. The
heap size therefore stays constant at its initial value.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.slices.spec import KillKind, KillSpec, PGISpec, SliceSpec
from repro.workloads.base import SLICE_CODE_BASE, Lcg, Workload
from repro.workloads.vpr import STRUCT_BYTES


def build(scale: float = 1.0, seed: int = 2002) -> Workload:
    """Build the insert+pop vpr workload.

    At ``scale=1.0``: a 5000-element heap and 1100 insert/pop rounds,
    ~300k dynamic instructions.
    """
    heap_size = max(int(5000 * scale), 64)
    rounds = max(int(1100 * scale), 24)
    capacity = heap_size + rounds + 4

    asm = Assembler(base_pc=0x1000)
    heap_base = asm.data_space("heap", capacity)
    heap_tail_addr = asm.data_word("heap_tail", heap_size + 1)
    arena_base = asm.data_space("arena", capacity * (STRUCT_BYTES // 8))
    arena_next_addr = asm.data_word("arena_next", 0)
    costs_base = asm.data_space("costs", rounds)
    net_base = asm.data_space("net", 1024)

    # ------------------------------------------------------------------
    # Driver.
    # ------------------------------------------------------------------
    asm.li("r20", rounds)
    asm.li("r21", costs_base)
    asm.li("r22", net_base)
    asm.li("r28", 0)
    asm.label("round_loop")
    asm.comment("fork point: insert slice (hoisted past phase 1)")
    insert_fork = asm.and_("r23", "r20", imm=63)
    asm.sll("r23", "r23", imm=6)
    asm.add("r23", "r23", rb="r22")
    for step in range(6):
        asm.ld("r24", "r23", 8 * step)
        asm.add("r26", "r26", rb="r24")
        asm.sra("r25", "r24", imm=2)
        asm.xor("r27", "r27", rb="r25")
    asm.ld("r17", "r21")  # cost
    asm.call("node_to_heap")
    asm.comment("fork point: pop slice (hoisted past phase 2)")
    pop_fork = asm.xor("r23", "r26", rb="r27")
    for step in range(6):
        asm.ld("r24", "r22", 8 * step + 512)
        asm.add("r26", "r26", rb="r24")
        asm.sll("r25", "r24", imm=1)
        asm.xor("r27", "r27", rb="r25")
    asm.call("get_heap_head")
    asm.add("r28", "r28", rb="r0")  # popped cost accumulates (r0 = result)
    asm.add("r21", "r21", imm=8)
    asm.sub("r20", "r20", imm=1)
    asm.bgt("r20", "round_loop")
    asm.halt()

    # ------------------------------------------------------------------
    # node_to_heap + add_to_heap (as in repro.workloads.vpr).
    # ------------------------------------------------------------------
    asm.label("node_to_heap")
    asm.li("r10", arena_next_addr)
    asm.ld("r11", "r10")
    asm.add("r12", "r11", imm=STRUCT_BYTES)
    asm.st("r12", "r10")
    asm.st("r17", "r11", 8)
    asm.li("r13", 0)
    asm.st("r13", "r11", 16)
    asm.st("r13", "r11", 24)
    asm.li("r1", heap_tail_addr)
    asm.ld("r2", "r1")  # ifrom = heap_tail
    asm.li("r5", heap_base)
    asm.s8add("r3", "r2", "r5")
    asm.st("r11", "r3")  # heap[tail] = hptr
    asm.sra("r6", "r2", imm=1)
    asm.ble("r6", "up_return")
    asm.label("up_loop")
    asm.s8add("r7", "r2", "r5")
    asm.s8add("r8", "r6", "r5")
    asm.ld("r9", "r7")
    up_load_ptr = asm.ld("r10", "r8")  # heap[ito]
    asm.ld("r12", "r9", 8)
    up_load_cost = asm.ld("r13", "r10", 8)  # heap[ito]->cost
    asm.cmplt("r14", "r12", rb="r13")
    up_branch = asm.beq("r14", "up_return")
    asm.st("r9", "r8")
    asm.st("r10", "r7")
    asm.mov("r2", "r6")
    asm.sra("r6", "r2", imm=1)
    asm.bgt("r6", "up_loop")
    asm.label("up_return")
    asm.ld("r4", "r1")
    asm.add("r4", "r4", imm=1)
    asm.st("r4", "r1")
    asm.ret()

    # ------------------------------------------------------------------
    # get_heap_head: pop the root, move the last element to the root,
    # and trickle it down. Returns the popped cost in r0.
    # ------------------------------------------------------------------
    asm.label("get_heap_head")
    asm.li("r1", heap_tail_addr)
    asm.li("r5", heap_base)
    asm.ld("r2", "r1")  # tail
    asm.ld("r3", "r5", 8)  # root ptr (heap[1])
    asm.ld("r0", "r3", 8)  # result = root->cost
    asm.sub("r2", "r2", imm=1)
    asm.st("r2", "r1")  # tail--
    asm.s8add("r4", "r2", "r5")
    asm.ld("r6", "r4")  # last = heap[tail]
    asm.ld("r7", "r6", 8)  # last->cost
    asm.li("r8", 1)  # ito = 1
    asm.label("down_loop")
    asm.sll("r9", "r8", imm=1)  # child = 2*ito
    asm.sub("r10", "r9", rb="r2")
    asm.bge("r10", "down_done")  # child >= tail: leaf reached
    asm.s8add("r11", "r9", "r5")
    down_load_c1 = asm.ld("r12", "r11")  # heap[child]
    down_load_c2 = asm.ld("r13", "r11", 8)  # heap[child+1]
    down_load_cost1 = asm.ld("r14", "r12", 8)
    down_load_cost2 = asm.ld("r15", "r13", 8)
    asm.cmplt("r16", "r15", rb="r14")
    asm.comment("problem branch: which child is smaller (unbiased)")
    which_branch = asm.beq("r16", "no_inc")
    asm.add("r9", "r9", imm=1)  # child++
    asm.mov("r12", "r13")
    asm.mov("r14", "r15")
    asm.label("no_inc")
    asm.cmplt("r16", "r14", rb="r7")
    asm.comment("problem branch: descent continues (unbiased)")
    continue_branch = asm.beq("r16", "down_done")
    asm.s8add("r18", "r8", "r5")
    asm.st("r12", "r18")  # heap[ito] = heap[child]
    asm.mov("r8", "r9")  # ito = child
    asm.br("down_loop")
    asm.label("down_done")
    asm.s8add("r18", "r8", "r5")
    asm.st("r6", "r18")  # heap[ito] = last
    asm.ret()

    program = asm.build()

    rng = Lcg(seed)
    image = dict(program.data)
    initial = sorted(rng.below(1 << 34) for _ in range(heap_size))
    for i, cost in enumerate(initial, start=1):
        struct_addr = arena_base + i * STRUCT_BYTES
        image[heap_base + 8 * i] = struct_addr
        image[struct_addr + 8] = cost
    image[arena_next_addr] = arena_base + (heap_size + 1) * STRUCT_BYTES
    for i in range(rounds):
        draw = rng.below(1 << 17)
        image[costs_base + 8 * i] = draw * draw

    insert_slice = _insert_slice(
        insert_fork.pc,
        heap_base,
        heap_tail_addr,
        up_branch.pc,
        program.pc_of("up_loop"),
        program.pc_of("up_return"),
        up_load_ptr.pc,
        up_load_cost.pc,
    )
    pop_slice = _pop_slice(
        pop_fork.pc,
        heap_base,
        heap_tail_addr,
        which_branch.pc,
        continue_branch.pc,
        program.pc_of("down_loop"),
        program.pc_of("down_done"),
        {
            "c1": down_load_c1.pc,
            "c2": down_load_c2.pc,
            "cost1": down_load_cost1.pc,
            "cost2": down_load_cost2.pc,
        },
    )

    return Workload(
        name="vpr_full",
        program=program,
        memory_image=image,
        region=rounds * 330,
        description="heap insert + remove-min with two cooperating slices",
        slices=(insert_slice, pop_slice),
        problem_branch_pcs=frozenset(
            {up_branch.pc, which_branch.pc, continue_branch.pc}
        ),
        problem_load_pcs=frozenset(
            {
                up_load_cost.pc,
                up_load_ptr.pc,
                down_load_cost1.pc,
                down_load_cost2.pc,
            }
        ),
        expectation=(
            "both heap directions covered: the pop slice replicates the "
            "paper's richer vpr slice shape (4 prefetches + 2 "
            "predictions per level)"
        ),
    )


def _insert_slice(
    fork_pc, heap_base, heap_tail_addr, branch_pc, loop_pc, return_pc,
    ptr_load_pc, cost_load_pc,
) -> SliceSpec:
    """Trickle-up slice (as in repro.workloads.vpr, cost via r21)."""
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x10000)
    asm.label("s")
    asm.ld("r17", "r21")
    asm.li("r6", heap_base)
    asm.li("r4", heap_tail_addr)
    asm.ld("r3", "r4")
    asm.label("loop")
    asm.sra("r3", "r3", imm=1)
    asm.s8add("r16", "r3", "r6")
    pf_ptr = asm.ld("r18", "r16")
    pf_cost = asm.ld("r1", "r18", 8)
    pgi = asm.cmple("r2", "r1", rb="r17")
    asm.bne("r2", "exit")
    back = asm.bgt("r3", "loop")
    asm.label("exit")
    asm.halt()
    code = asm.build()
    return SliceSpec(
        name="vprf_up",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("s"),
        live_in_regs=(21,),
        pgis=(PGISpec(pgi.pc, branch_pc),),
        kills=(
            KillSpec(loop_pc, KillKind.LOOP, skip_first=True),
            KillSpec(return_pc, KillKind.SLICE),
        ),
        max_iterations=8,
        loop_back_pc=back.pc,
        prefetch_for={pf_ptr.pc: ptr_load_pc, pf_cost.pc: cost_load_pc},
    )


def _pop_slice(
    fork_pc, heap_base, heap_tail_addr, which_pc, continue_pc,
    loop_pc, done_pc, load_pcs,
) -> SliceSpec:
    """Trickle-down slice: 4 prefetches + 2 predictions per level.

    Replicates the descent the main thread will take: per level it
    loads both children and their costs, predicts the smaller-child
    test and the continue test, and follows its own decisions down the
    tree (the "existence" control is fully computable from the data the
    slice already loads, so nothing is left to the kill mechanism
    except mis-speculated paths).
    """
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x20000)
    asm.label("s")
    asm.li("r5", heap_base)
    asm.li("r1", heap_tail_addr)
    asm.ld("r2", "r1")  # pre-pop tail
    asm.sub("r2", "r2", imm=1)  # post-pop tail
    asm.s8add("r4", "r2", "r5")
    asm.ld("r6", "r4")  # last = heap[tail]
    asm.ld("r7", "r6", 8)  # last->cost
    asm.li("r8", 1)
    asm.label("loop")
    asm.sll("r9", "r8", imm=1)
    asm.sub("r10", "r9", rb="r2")
    asm.bge("r10", "exit")
    asm.s8add("r11", "r9", "r5")
    pf_c1 = asm.ld("r12", "r11")
    pf_c2 = asm.ld("r13", "r11", 8)
    pf_cost1 = asm.ld("r14", "r12", 8)
    pf_cost2 = asm.ld("r15", "r13", 8)
    pgi_which = asm.cmplt("r16", "r15", rb="r14")
    asm.comment("follow our own smaller-child decision (if-converted)")
    asm.add("r19", "r9", imm=1)
    asm.cmovne("r9", "r16", "r19")
    asm.cmovne("r14", "r16", "r15")
    pgi_continue = asm.cmplt("r16", "r14", rb="r7")
    asm.beq("r16", "exit")
    asm.mov("r8", "r9")
    back = asm.br("loop")
    asm.label("exit")
    asm.halt()
    code = asm.build()
    return SliceSpec(
        name="vprf_down",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("s"),
        live_in_regs=(),
        pgis=(
            # Both main-thread branches are beq on the comparison value:
            # taken means the comparison was FALSE, hence invert.
            PGISpec(pgi_which.pc, which_pc, invert=True),
            PGISpec(pgi_continue.pc, continue_pc, invert=True),
        ),
        kills=(
            KillSpec(loop_pc, KillKind.LOOP, skip_first=True),
            KillSpec(done_pc, KillKind.SLICE),
        ),
        max_iterations=16,
        loop_back_pc=back.pc,
        prefetch_for={
            pf_c1.pc: load_pcs["c1"],
            pf_c2.pc: load_pcs["c2"],
            pf_cost1.pc: load_pcs["cost1"],
            pf_cost2.pc: load_pcs["cost2"],
        },
    )

"""mcf analog: pointer-chasing over scattered node chains.

mcf's dominant cost is walking linked node structures (e.g.
``refresh_potential`` over the spanning tree) where consecutive nodes
sit on unrelated cache lines: every ``node->next`` dereference misses,
the stream prefetcher sees no stride, and the per-node branch on the
node's potential is data-dependent and unbiased.

The slice mirrors the paper's mcf slice (Table 3: 12 static
instructions, all in the loop, 1 live-in, 4 prefetches and 1 prediction
per iteration, iteration limit 98): it chases the same chain, touching
each node's line (one prefetch covers next/potential/cost, which share
the line) and computing the potential test as a PGI. As the paper notes
for mcf, "the work performed at each node is insufficient to cover the
latency of the sequential memory accesses", so the slice runs only
slightly ahead of the main thread: prefetches are partially covering
and predictions are frequently late — most of the benefit comes from
loads (Table 4: ~80%).
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.slices.spec import KillKind, KillSpec, PGIKind, PGISpec, SliceSpec
from repro.workloads.base import SLICE_CODE_BASE, Lcg, Workload

#: Bytes per node: next, potential, cost, pad (one 64B line holds two).
NODE_BYTES = 32


def build(scale: float = 1.0, seed: int = 1814) -> Workload:
    """Build the mcf chain-walk workload.

    At ``scale=1.0``: 60 chains of 96 nodes scattered over a ~180KB
    arena (far beyond the 64KB L1), ~90k dynamic instructions dominated
    by serial misses (mcf has the lowest baseline IPC in Figure 1).
    """
    chains = max(int(60 * scale), 6)
    chain_len = 96
    total_nodes = chains * chain_len

    asm = Assembler(base_pc=0x1000)
    heads_base = asm.data_space("heads", chains)
    arena_base = asm.data_space("arena", total_nodes * (NODE_BYTES // 8))

    # ------------------------------------------------------------------
    # Driver: walk each chain, updating node potentials.
    # ------------------------------------------------------------------
    asm.li("r20", chains)
    asm.li("r21", heads_base)
    asm.li("r28", 0)  # running checksum
    asm.label("chain_loop")
    asm.comment("fork point: one slice per chain")
    fork_inst = asm.ld("r1", "r21")  # node = heads[k]
    asm.li("r2", 1000)  # parent potential seed
    asm.beq("r1", "chain_done")

    asm.label("node_loop")
    asm.comment("node->potential (problem load: new line every node)")
    load_pot = asm.ld("r3", "r1", 8)
    load_cost = asm.ld("r4", "r1", 16)
    asm.sub("r5", "r3", rb="r2")
    asm.comment("problem branch: sign of reduced potential (unbiased)")
    problem_branch = asm.blt("r5", "neg_update")
    asm.add("r2", "r2", rb="r4")
    asm.add("r28", "r28", rb="r3")
    asm.br("advance")
    asm.label("neg_update")
    asm.sub("r2", "r2", rb="r4")
    asm.xor("r28", "r28", rb="r3")
    asm.label("advance")
    asm.st("r2", "r1", 24)  # record updated potential (pad slot)
    load_next = asm.ld("r1", "r1")  # node = node->next
    asm.bne("r1", "node_loop")

    asm.label("chain_done")
    asm.add("r21", "r21", imm=8)
    asm.sub("r20", "r20", imm=1)
    asm.bgt("r20", "chain_loop")
    asm.halt()
    program = asm.build()

    # ------------------------------------------------------------------
    # Memory: nodes of each chain at randomly permuted arena slots, so
    # successive dereferences land on unrelated lines.
    # ------------------------------------------------------------------
    rng = Lcg(seed)
    image = dict(program.data)
    slots = list(range(total_nodes))
    for i in range(total_nodes - 1, 0, -1):  # Fisher-Yates
        j = rng.below(i + 1)
        slots[i], slots[j] = slots[j], slots[i]
    addr_of_node = [arena_base + s * NODE_BYTES for s in slots]
    node_index = 0
    for k in range(chains):
        image[heads_base + 8 * k] = addr_of_node[node_index]
        for i in range(chain_len):
            addr = addr_of_node[node_index]
            nxt = (
                addr_of_node[node_index + 1] if i < chain_len - 1 else 0
            )
            image[addr] = nxt
            # Potentials straddle the running "parent potential" so the
            # sign test stays unbiased.
            image[addr + 8] = 900 + rng.below(220)
            image[addr + 16] = rng.below(5) - 2
            node_index += 1

    slice_spec = _build_slice(
        fork_pc=fork_inst.pc,
        problem_branch_pc=problem_branch.pc,
        loop_kill_pc=program.pc_of("node_loop"),
        slice_kill_pc=program.pc_of("chain_done"),
        load_pot_pc=load_pot.pc,
        load_next_pc=load_next.pc,
        load_cost_pc=load_cost.pc,
    )
    background_spec = _build_background_slice(
        fork_pc=fork_inst.pc,
        chain_len=chain_len,
        load_pot_pc=load_pot.pc,
        load_next_pc=load_next.pc,
    )

    return Workload(
        name="mcf",
        program=program,
        memory_image=image,
        region=total_nodes * 14 + chains * 8 + 16,
        description="pointer-chasing chain walk with unbiased sign tests",
        slices=(slice_spec, background_spec),
        problem_branch_pcs=frozenset({problem_branch.pc}),
        problem_load_pcs=frozenset({load_pot.pc, load_next.pc, load_cost.pc}),
        expectation=(
            "moderate speedup dominated by prefetching (~80% from "
            "loads); slices consistently late because per-node work "
            "cannot hide the chain's serial misses (paper: 55% miss "
            "reduction, only 15% of mispredictions removed)"
        ),
    )


def _build_slice(
    fork_pc: int,
    problem_branch_pc: int,
    loop_kill_pc: int,
    slice_kill_pc: int,
    load_pot_pc: int,
    load_next_pc: int,
    load_cost_pc: int,
) -> SliceSpec:
    """Chain-chasing slice: 4 prefetching loads + 1 PGI per iteration.

    Terminates when it dereferences the chain's null tail (the paper's
    exception rule) or at the 98-iteration runaway bound (Table 3).
    """
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x1000)
    asm.label("mcf_slice")
    asm.ld("r1", "r21")  # node = heads[k] (r21 live-in)
    asm.li("r2", 1000)
    asm.label("mcf_slice_loop")
    asm.comment("prefetch the node line (covers next/potential/cost)")
    pf_pot = asm.ld("r3", "r1", 8)
    pf_cost = asm.ld("r4", "r1", 16)
    asm.sub("r5", "r3", rb="r2")
    asm.comment("PGI: sign of reduced potential")
    pgi_inst = asm.cmplt("r6", "r5", imm=0)
    # Track the potential update on both paths via if-conversion
    # (Section 3.1: required control flow is if-converted).
    asm.sub("r7", "r2", rb="r4")
    asm.add("r2", "r2", rb="r4")
    asm.cmovne("r2", "r6", "r7")
    pf_next = asm.ld("r1", "r1")  # faults/stops at the null tail
    back = asm.bne("r1", "mcf_slice_loop")
    asm.halt()
    code = asm.build()

    return SliceSpec(
        name="mcf_chain",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("mcf_slice"),
        live_in_regs=(21,),
        pgis=(PGISpec(slice_pc=pgi_inst.pc, branch_pc=problem_branch_pc),),
        kills=(
            KillSpec(loop_kill_pc, KillKind.LOOP, skip_first=True),
            KillSpec(slice_kill_pc, KillKind.SLICE),
        ),
        max_iterations=98,
        loop_back_pc=back.pc,
        prefetch_for={
            pf_pot.pc: load_pot_pc,
            pf_cost.pc: load_cost_pc,
            pf_next.pc: load_next_pc,
        },
    )


def value_prediction_slice(workload: Workload) -> SliceSpec:
    """The conclusion's value-prediction extension, applied to mcf.

    The chain walk's fundamental limit is the serial ``node->next``
    dependence: prefetching shortens each miss but the main thread
    still waits for every pointer before starting the next access.
    This slice variant additionally routes its computed next pointers
    and potentials to the correlator as *value predictions*; when a
    prediction is bound (and correct), the main thread's consumers
    proceed without waiting for the load, breaking the serial chain.
    """
    program = workload.program
    (branch_pc,) = workload.problem_branch_pcs
    loads = {program.at(pc).imm: pc for pc in workload.problem_load_pcs}
    load_next_pc, load_pot_pc, load_cost_pc = loads[0], loads[8], loads[16]

    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x3000)
    asm.label("mcf_vp")
    asm.ld("r1", "r21")  # node = heads[k] (r21 live-in)
    asm.li("r2", 1000)
    asm.label("mcf_vp_loop")
    pf_pot = asm.ld("r3", "r1", 8)
    pf_cost = asm.ld("r4", "r1", 16)
    asm.sub("r5", "r3", rb="r2")
    pgi_branch = asm.cmplt("r6", "r5", imm=0)
    asm.sub("r7", "r2", rb="r4")
    asm.add("r2", "r2", rb="r4")
    asm.cmovne("r2", "r6", "r7")
    asm.comment("value PGI: the next pointer itself")
    pf_next = asm.ld("r1", "r1")
    back = asm.bne("r1", "mcf_vp_loop")
    asm.halt()
    code = asm.build()

    return SliceSpec(
        name="mcf_value",
        fork_pc=workload.slices[0].fork_pc,
        code=code,
        entry_pc=code.pc_of("mcf_vp"),
        live_in_regs=(21,),
        pgis=(
            PGISpec(slice_pc=pgi_branch.pc, branch_pc=branch_pc),
            PGISpec(
                slice_pc=pf_next.pc,
                branch_pc=load_next_pc,
                kind=PGIKind.VALUE,
            ),
            PGISpec(
                slice_pc=pf_pot.pc,
                branch_pc=load_pot_pc,
                kind=PGIKind.VALUE,
            ),
        ),
        kills=(
            KillSpec(program.pc_of("node_loop"), KillKind.LOOP, skip_first=True),
            KillSpec(program.pc_of("chain_done"), KillKind.SLICE),
        ),
        max_iterations=98,
        loop_back_pc=back.pc,
        prefetch_for={
            pf_pot.pc: load_pot_pc,
            pf_cost.pc: load_cost_pc,
            pf_next.pc: load_next_pc,
        },
    )


def _build_background_slice(
    fork_pc: int, chain_len: int, load_pot_pc: int, load_next_pc: int
) -> SliceSpec:
    """The long-running "background" prefetch slice of Section 6.1.

    While the main thread (and the prediction slice) walk chain k, this
    slice walks chain k+1 end to end, touching every node's line. It
    generates no predictions and needs no kills, so it uses a second
    idle thread context with zero correlation state.
    """
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x2000)
    asm.label("mcf_bg")
    asm.comment("node = heads[k + 1] (the next chain)")
    asm.ld("r1", "r21", 8)
    asm.label("mcf_bg_loop")
    pf_pot = asm.ld("r3", "r1", 8)
    pf_next = asm.ld("r1", "r1")  # faults/stops at the null tail
    back = asm.bne("r1", "mcf_bg_loop")
    asm.halt()
    code = asm.build()
    return SliceSpec(
        name="mcf_background",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("mcf_bg"),
        live_in_regs=(21,),
        max_iterations=chain_len + 2,
        loop_back_pc=back.pc,
        prefetch_for={pf_pot.pc: load_pot_pc, pf_next.pc: load_next_pc},
    )

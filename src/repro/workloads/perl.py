"""perl analog: interpreter dispatch with symbol-table probes.

perl's interpreter loop looks up variables in hash tables as a side
effect of most opcodes: the bucket dereference misses (symbol table
larger than the L1) and the found/not-found comparison branch is
data-dependent. Per opcode the kernel does dispatch bookkeeping
(fork lead), probes a bucket, and branches on the key comparison.

The slice probes the next opcode's bucket (prefetch) and pre-computes
the key test (paper Table 4 perl: 35% of mispredictions removed, 30%
miss reduction, ~20% of the speedup from loads).
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.slices.spec import KillKind, KillSpec, PGISpec, SliceSpec
from repro.workloads.base import SLICE_CODE_BASE, Lcg, Workload

BUCKET_BYTES = 32


def build(scale: float = 1.0, seed: int = 1987) -> Workload:
    """Build the perl dispatch workload.

    At ``scale=1.0``: a 6000-bucket symbol table (192KB) and 2400
    bytecode ops, ~220k dynamic instructions.
    """
    buckets = max(int(6000 * scale), 256)
    ops = max(int(2400 * scale), 40)

    asm = Assembler(base_pc=0x1000)
    table_base = asm.data_space("table", buckets * (BUCKET_BYTES // 8))
    # Bytecode: (bucket pointer, key) pairs.
    code_base = asm.data_space("bytecode", ops * 2)
    pad_base = asm.data_space("pad", 512)  # L1-resident scratch

    asm.li("r20", ops)
    asm.li("r21", code_base)
    asm.li("r22", pad_base)
    asm.li("r28", 0)

    asm.label("op_loop")
    asm.ld("r1", "r21")  # bucket pointer
    asm.ld("r2", "r21", 8)  # key
    bucket_load = asm.ld("r3", "r1")  # bucket->key (problem load)
    asm.ld("r4", "r1", 8)  # bucket->value
    asm.cmpeq("r5", "r3", rb="r2")
    asm.comment("problem branch: symbol found in first bucket slot?")
    found_branch = asm.bne("r5", "op_found")
    asm.xor("r28", "r28", rb="r4")
    asm.br("op_done")
    asm.label("op_found")
    asm.add("r28", "r28", rb="r4")
    asm.label("op_done")
    asm.comment("fork point for the NEXT op (hoisted past dispatch work)")
    fork_inst = asm.and_("r6", "r20", imm=0x3F)
    asm.sll("r6", "r6", imm=3)
    asm.add("r6", "r6", rb="r22")
    for step in range(5):
        asm.ld("r7", "r6", 8 * step)
        asm.add("r23", "r23", rb="r7")
        asm.sra("r8", "r7", imm=2)
        asm.xor("r24", "r24", rb="r8")
    asm.add("r28", "r28", rb="r23")
    asm.xor("r28", "r28", rb="r24")
    asm.add("r21", "r21", imm=16)
    asm.sub("r20", "r20", imm=1)
    asm.bgt("r20", "op_loop")
    asm.halt()
    program = asm.build()

    rng = Lcg(seed)
    image = dict(program.data)
    for i in range(buckets):
        addr = table_base + i * BUCKET_BYTES
        image[addr] = rng.below(1 << 16)  # stored key
        image[addr + 8] = rng.below(1 << 20)  # value
    for i in range(ops):
        b = rng.below(buckets)
        bucket_addr = table_base + b * BUCKET_BYTES
        # Half the probes hit (key matches), half miss: unbiased branch.
        key = image[bucket_addr] if rng.bit() else rng.below(1 << 16)
        image[code_base + 16 * i] = bucket_addr
        image[code_base + 16 * i + 8] = key

    slice_spec = _build_slice(
        fork_pc=fork_inst.pc,
        found_branch_pc=found_branch.pc,
        slice_kill_pc=program.pc_of("op_done"),
        bucket_load_pc=bucket_load.pc,
    )

    return Workload(
        name="perl",
        program=program,
        memory_image=image,
        region=ops * 95,
        description="interpreter ops probing a symbol table",
        slices=(slice_spec,),
        problem_branch_pcs=frozenset({found_branch.pc}),
        problem_load_pcs=frozenset({bucket_load.pc}),
        expectation=(
            "modest speedup (paper: 35% of mispredictions removed, "
            "30% miss reduction, ~20% of the speedup from loads)"
        ),
    )


def _build_slice(
    fork_pc: int,
    found_branch_pc: int,
    slice_kill_pc: int,
    bucket_load_pc: int,
) -> SliceSpec:
    """Probe-ahead slice: bucket prefetch + key-test prediction."""
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x8000)
    asm.label("pl_slice")
    asm.comment("the NEXT op's bucket (r21 still points at the current)")
    asm.ld("r1", "r21", 16)  # r21 live-in
    asm.ld("r2", "r21", 24)
    pf_bucket = asm.ld("r3", "r1")
    asm.comment("PGI: key comparison")
    pgi_inst = asm.cmpeq("r5", "r3", rb="r2")
    asm.halt()
    code = asm.build()

    return SliceSpec(
        name="perl_probe",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("pl_slice"),
        live_in_regs=(21,),
        pgis=(PGISpec(slice_pc=pgi_inst.pc, branch_pc=found_branch_pc),),
        kills=(KillSpec(slice_kill_pc, KillKind.SLICE),),
        prefetch_for={pf_bucket.pc: bucket_load_pc},
    )

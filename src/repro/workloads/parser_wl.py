"""parser analog: dictionary hashing plus deallocation cascades.

parser is the paper's clearest slice-construction failure (Section
6.2). Its two problem localities resist slicing for different reasons:

* **Hash probes** — key generation is "computationally intensive, over
  50 instructions, and it occurs right before the problem
  instructions": a slice would have to replicate the whole key
  computation, so forking it buys no latency.
* **Deallocation cascades** — the stack-organized allocator defers
  work until the freed chunk reaches the top of the stack, then a long
  cascade runs; which ``xfree`` call triggers it is unpredictable, so
  hoisting a fork produces many useless slices.

Accordingly this workload ships **no slices**: its slice-assisted run
equals the baseline (a ~0% bar in Figure 11), exactly as the paper
reports. The kernel interleaves hash probes behind a long serial key
computation with occasional free-stack cascades.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.workloads.base import Lcg, Workload

BUCKET_BYTES = 32


def build(scale: float = 1.0, seed: int = 1995) -> Workload:
    """Build the parser workload.

    At ``scale=1.0``: a 8000-bucket dictionary (256KB), 1700 words,
    each with a ~30-instruction serial key computation, and a
    deallocation cascade every 16 words; ~230k dynamic instructions.
    """
    buckets = max(int(8000 * scale), 256)
    words = max(int(1700 * scale), 40)

    asm = Assembler(base_pc=0x1000)
    table_base = asm.data_space("dict", buckets * (BUCKET_BYTES // 8))
    words_base = asm.data_space("words", words)
    free_stack = asm.data_space("freestack", 1024)

    asm.li("r20", words)
    asm.li("r21", words_base)
    asm.li("r22", table_base)
    asm.li("r26", free_stack)
    asm.li("r27", 0)  # free-stack depth
    asm.li("r28", 0)

    asm.label("word_loop")
    asm.ld("r1", "r21")  # raw word bits
    asm.comment("serial key computation (~30 dependent instructions;")
    asm.comment("this is why a fork gains no latency, Section 6.2)")
    for round_num in range(6):
        asm.mul("r1", "r1", imm=0x5851F4)
        asm.sra("r2", "r1", imm=13)
        asm.xor("r1", "r1", rb="r2")
        asm.add("r1", "r1", imm=round_num * 97)
        asm.and_("r1", "r1", imm=(1 << 30) - 1)
    asm.comment("bucket probe immediately after the key is ready")
    asm.and_("r3", "r1", imm=(1 << 20) - 1)
    asm.li("r4", buckets)
    asm.div("r5", "r3", rb="r4")
    asm.mul("r6", "r5", rb="r4")
    asm.sub("r5", "r3", rb="r6")  # r5 = r3 % buckets
    asm.sll("r5", "r5", imm=5)
    asm.add("r5", "r5", rb="r22")
    probe_load = asm.ld("r7", "r5")  # bucket key (problem load)
    asm.cmpeq("r8", "r7", rb="r1")
    asm.comment("problem branch: dictionary hit test")
    hit_branch = asm.bne("r8", "word_hit")
    asm.comment("miss: install the key and push onto the free stack")
    asm.st("r1", "r5")
    asm.s8add("r9", "r27", "r26")
    asm.st("r5", "r9")
    asm.add("r27", "r27", imm=1)
    asm.br("word_next")
    asm.label("word_hit")
    asm.add("r28", "r28", rb="r7")
    asm.label("word_next")
    asm.comment("periodic deallocation cascade (top-of-stack triggered)")
    asm.and_("r10", "r20", imm=15)
    asm.bne("r10", "no_cascade")
    asm.label("cascade")
    asm.ble("r27", "no_cascade")
    asm.sub("r27", "r27", imm=1)
    asm.s8add("r9", "r27", "r26")
    asm.ld("r11", "r9")  # chunk to free (pointer chase)
    asm.ld("r12", "r11")  # touch the chunk (problem load)
    asm.xor("r28", "r28", rb="r12")
    asm.br("cascade")
    asm.label("no_cascade")
    asm.add("r21", "r21", imm=8)
    asm.sub("r20", "r20", imm=1)
    asm.bgt("r20", "word_loop")
    asm.halt()
    program = asm.build()

    rng = Lcg(seed)
    image = dict(program.data)
    for i in range(buckets):
        image[table_base + BUCKET_BYTES * i] = rng.below(1 << 30)
    for i in range(words):
        image[words_base + 8 * i] = rng.below(1 << 30)

    return Workload(
        name="parser",
        program=program,
        memory_image=image,
        region=words * 170,
        description="dictionary hashing behind serial key computation",
        slices=(),  # no profitable slices exist (Section 6.2)
        problem_branch_pcs=frozenset({hit_branch.pc}),
        problem_load_pcs=frozenset({probe_load.pc}),
        expectation=(
            "no speedup: no profitable slices can be constructed — key "
            "generation would be replicated wholesale and cascade "
            "triggers are unpredictable (Section 6.2)"
        ),
    )

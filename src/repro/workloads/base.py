"""Workload framework.

Each SPEC2000int benchmark the paper evaluates is represented by a
synthetic kernel distilled to the pathology the paper documents for it
(see each workload module's docstring). A built :class:`Workload`
bundles the program, its initial memory image, the measured region
length, the hand-constructed speculative slices (when the paper built
slices for that benchmark, Table 3), and ground-truth problem
instructions for tests and the Figure 1 overlays.

All workloads accept a ``scale`` factor: 1.0 is the benchmark-sized
configuration used by the paper-reproduction benches; tests use small
scales. Working sets at scale 1.0 are sized against the Table 1 caches
the same way the paper's inputs were (e.g. vpr's heap "does not fit in
the L1 cache").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.memory import to_signed
from repro.isa.program import Program
from repro.slices.spec import SLICE_CODE_BASE, SliceSpec


@dataclass
class Workload:
    """A runnable benchmark instance."""

    name: str
    program: Program
    memory_image: dict[int, int]
    #: Main-thread instructions to commit in the measured region.
    region: int
    description: str = ""
    slices: tuple[SliceSpec, ...] = ()
    #: Ground-truth problem instructions (hand annotations, used by
    #: tests and as the Figure 1 per-instruction perfect sets when the
    #: profiler is not run first).
    problem_branch_pcs: frozenset[int] = frozenset()
    problem_load_pcs: frozenset[int] = frozenset()
    #: Paper-documented qualitative expectation, used in EXPERIMENTS.md
    #: ("large speedup", "no speedup: high base IPC", ...).
    expectation: str = ""
    #: Build scale recorded by the registry, so a built workload can be
    #: turned back into a declarative ``RunRequest``.
    scale: float = 1.0

    def __post_init__(self) -> None:
        for spec in self.slices:
            for inst in spec.code.instructions:
                if inst.is_store:
                    raise ValueError(
                        f"slice {spec.name!r} contains a store at "
                        f"{inst.pc:#x}; slices must not affect "
                        f"architected state"
                    )
        # Normalize the image once at build time (8-byte-aligned keys,
        # signed values — :class:`repro.arch.memory.Memory`'s internal
        # form) so every run of this workload can copy the dict instead
        # of re-normalizing it. At benchmark scales the image has
        # millions of words and re-normalization dominates otherwise
        # (~5.8s vs ~0.15s per fast-forward of scale-181 mcf).
        self.memory_image = {
            addr & ~7: to_signed(value)
            for addr, value in self.memory_image.items()
        }


class Lcg:
    """Deterministic 64-bit LCG for workload data generation.

    Kept dependency-free and stable across Python versions so memory
    images (and therefore results) are reproducible.
    """

    MULTIPLIER = 6364136223846793005
    INCREMENT = 1442695040888963407
    MASK = (1 << 64) - 1

    def __init__(self, seed: int):
        self._state = (seed ^ 0x9E3779B97F4A7C15) & self.MASK

    def next(self) -> int:
        self._state = (
            self._state * self.MULTIPLIER + self.INCREMENT
        ) & self.MASK
        return self._state >> 16

    def below(self, bound: int) -> int:
        """Uniform-ish integer in [0, bound)."""
        return self.next() % bound

    def bit(self) -> int:
        return (self.next() >> 5) & 1


__all__ = ["Lcg", "SLICE_CODE_BASE", "Workload"]

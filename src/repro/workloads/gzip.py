"""gzip analog: LZ77 longest-match comparison loops.

gzip's ``longest_match`` compares the lookahead string against prior
window positions; the match-continue branch depends on the compared
bytes, so its trip count is data-dependent and short (a few words),
making it the classic unbiased problem branch. The paper's gzip run
covers no problem loads (Table 4) — the benefit is almost entirely
branch-side — so the slice here generates predictions only.

Per attempt, the kernel loads two window positions from a candidate
list and compares word-by-word until inequality. The slice runs the
same comparison ahead, one prediction per compared word.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.slices.spec import KillKind, KillSpec, PGISpec, SliceSpec
from repro.workloads.base import SLICE_CODE_BASE, Lcg, Workload


def build(scale: float = 1.0, seed: int = 1952) -> Workload:
    """Build the gzip match workload.

    At ``scale=1.0``: a 48K-word window (384KB) and 2800 match
    attempts, ~240k dynamic instructions.
    """
    window_words = max(int(48_000 * scale), 4096)
    attempts = max(int(2800 * scale), 40)

    asm = Assembler(base_pc=0x1000)
    window_base = asm.data_space("window", window_words)
    # Candidate pairs: (cur, cand) byte offsets into the window.
    cand_base = asm.data_space("cands", attempts * 2)
    hash_base = asm.data_space("hash", 256)  # L1-resident hash heads

    asm.li("r20", attempts)
    asm.li("r21", cand_base)
    asm.li("r28", 0)  # total match length (checksum)

    asm.label("match_loop")
    asm.ld("r1", "r21")  # cur position
    asm.ld("r2", "r21", 8)  # candidate position
    asm.li("r3", 0)  # match length

    asm.label("cmp_loop")
    cur_load = asm.ld("r4", "r1")
    cand_load = asm.ld("r5", "r2")
    asm.cmpeq("r6", "r4", rb="r5")
    asm.comment("problem branch: match continues while words equal")
    match_branch = asm.beq("r6", "match_done")
    asm.add("r1", "r1", imm=8)
    asm.add("r2", "r2", imm=8)
    asm.add("r3", "r3", imm=1)
    asm.br("cmp_loop")

    asm.label("match_done")
    asm.comment("fork point for the NEXT attempt (hoisted past the hash update)")
    fork_inst = asm.add("r28", "r28", rb="r3")
    asm.comment("hash-chain / best-length update (fork lead)")
    asm.sll("r7", "r3", imm=2)
    asm.xor("r28", "r28", rb="r7")
    for step in range(6):
        asm.and_("r8", "r28", imm=0x7F8)
        asm.add("r9", "r8", imm=hash_base)
        asm.ld("r10", "r9")
        asm.add("r10", "r10", rb="r3")
        asm.st("r10", "r9")
        asm.sra("r28", "r28", imm=1)
        asm.add("r28", "r28", rb="r10")
    asm.add("r21", "r21", imm=16)
    asm.sub("r20", "r20", imm=1)
    asm.bgt("r20", "match_loop")
    asm.halt()
    program = asm.build()

    # ------------------------------------------------------------------
    # Window contents: low-entropy "text" so random positions agree for
    # a geometric number of words (average match ~3).
    # ------------------------------------------------------------------
    rng = Lcg(seed)
    image = dict(program.data)
    for i in range(window_words):
        image[window_base + 8 * i] = rng.below(2)
    for i in range(attempts):
        cur = rng.below(window_words - 64)
        cand = rng.below(window_words - 64)
        image[cand_base + 16 * i] = window_base + 8 * cur
        image[cand_base + 16 * i + 8] = window_base + 8 * cand

    slice_spec = _build_slice(
        fork_pc=fork_inst.pc,
        match_branch_pc=match_branch.pc,
        loop_kill_pc=program.pc_of("cmp_loop"),
        slice_kill_pc=program.pc_of("match_done"),
    )

    return Workload(
        name="gzip",
        program=program,
        memory_image=image,
        region=attempts * 110,
        description="longest-match word-compare loops",
        slices=(slice_spec,),
        problem_branch_pcs=frozenset({match_branch.pc}),
        problem_load_pcs=frozenset({cur_load.pc, cand_load.pc}),
        expectation=(
            "large speedup, entirely from branches (paper: 64% of "
            "mispredictions removed, no problem loads covered)"
        ),
    )


def _build_slice(
    fork_pc: int,
    match_branch_pc: int,
    loop_kill_pc: int,
    slice_kill_pc: int,
) -> SliceSpec:
    """Match-compare slice: one match-exit prediction per word."""
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x4000)
    asm.label("gz_slice")
    asm.comment("the NEXT attempt's pair (r21 still points at the current)")
    asm.ld("r1", "r21", 16)  # r21 live-in: candidate-pair pointer
    asm.ld("r2", "r21", 24)
    asm.label("gz_loop")
    asm.ld("r4", "r1")
    asm.ld("r5", "r2")
    asm.comment("PGI: words differ == branch taken (match ends)")
    pgi_inst = asm.cmpeq("r6", "r4", rb="r5")
    asm.add("r1", "r1", imm=8)
    asm.add("r2", "r2", imm=8)
    back = asm.bgt("r6", "gz_loop")
    asm.halt()
    code = asm.build()

    return SliceSpec(
        name="gzip_match",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("gz_slice"),
        live_in_regs=(21,),
        pgis=(
            PGISpec(slice_pc=pgi_inst.pc, branch_pc=match_branch_pc, invert=True),
        ),
        kills=(
            KillSpec(loop_kill_pc, KillKind.LOOP, skip_first=True),
            KillSpec(slice_kill_pc, KillKind.SLICE),
        ),
        max_iterations=48,
        loop_back_pc=back.pc,
    )

"""eon analog: ray-object intersection tests.

eon (a probabilistic ray tracer) is compute-bound: its data fits in the
caches ("insufficient misses" for the memory side of Table 2), but
each ray performs several comparisons against freshly computed
geometry, giving a cluster of unbiased problem branches. The paper's
eon slice is straight-line (8 static instructions, 1 live-in) and
predicts 6 branches; the slice here predicts the 3 intersection tests
of each ray, and gets more than half of the mispredictions (paper:
52% removed, no loads covered).
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.slices.spec import KillKind, KillSpec, PGISpec, SliceSpec
from repro.workloads.base import SLICE_CODE_BASE, Lcg, Workload

RAY_BYTES = 32


def build(scale: float = 1.0, seed: int = 2000) -> Workload:
    """Build the eon intersection workload.

    At ``scale=1.0``: 2400 rays against an L1-resident scene,
    ~240k dynamic instructions at a high baseline IPC.
    """
    rays = max(int(2400 * scale), 40)

    asm = Assembler(base_pc=0x1000)
    rays_base = asm.data_space("rays", rays * (RAY_BYTES // 8))
    scene_base = asm.data_space("scene", 512)  # L1-resident
    hits_addr = asm.data_word("hits", 0)

    asm.li("r20", rays)
    asm.li("r21", rays_base)
    asm.li("r22", scene_base)
    asm.li("r28", 0)

    asm.label("ray_loop")
    asm.ld("r1", "r21")  # direction
    asm.ld("r2", "r21", 8)  # origin
    asm.ld("r3", "r21", 16)  # t-scale
    asm.comment("camera transform (unrelated to the hit tests; the")
    asm.comment("slice excludes it, which is where its lead comes from)")
    asm.sll("r23", "r1", imm=1)
    asm.add("r23", "r23", rb="r2")
    asm.sra("r24", "r2", imm=2)
    asm.xor("r24", "r24", rb="r3")
    asm.add("r25", "r23", rb="r24")
    asm.and_("r25", "r25", imm=0xFFFF)
    asm.add("r26", "r25", rb="r1")
    asm.sra("r26", "r26", imm=1)
    asm.xor("r28", "r28", rb="r26")
    asm.add("r28", "r28", rb="r25")
    asm.comment("intersection setup (compute-heavy, no misses)")
    asm.and_("r4", "r1", imm=0x1FF8)
    asm.add("r4", "r4", rb="r22")
    asm.ld("r5", "r4")  # sphere radius (scene: L1 hit)
    asm.mul("r6", "r1", rb="r2")
    asm.sra("r6", "r6", imm=14)
    asm.sub("r7", "r6", rb="r5")
    asm.comment("problem branch 1: discriminant sign")
    disc_branch = asm.blt("r7", "ray_miss")
    asm.mul("r8", "r7", rb="r3")
    asm.sra("r8", "r8", imm=6)
    asm.sub("r9", "r8", rb="r2")
    asm.comment("problem branch 2: near-clip test")
    near_branch = asm.blt("r9", "ray_near")
    asm.add("r10", "r9", rb="r5")
    asm.and_("r10", "r10", imm=0x3F)
    asm.sub("r11", "r10", imm=31)
    asm.comment("problem branch 3: shadow-cache parity")
    shadow_branch = asm.blt("r11", "ray_shadow")
    asm.add("r28", "r28", rb="r9")
    asm.br("ray_next")
    asm.label("ray_shadow")
    asm.xor("r28", "r28", rb="r10")
    asm.br("ray_next")
    asm.label("ray_near")
    asm.add("r28", "r28", imm=2)
    asm.br("ray_next")
    asm.label("ray_miss")
    asm.sub("r28", "r28", imm=1)
    asm.label("ray_next")
    asm.comment("fork point for the NEXT ray (hoisted past shading)")
    fork_inst = asm.add("r15", "r28", imm=0)
    asm.comment("shading / radiance accumulation (fork lead, ILP-rich)")
    asm.and_("r16", "r20", imm=0x3F)
    asm.sll("r16", "r16", imm=3)
    asm.add("r16", "r16", rb="r22")
    for step in range(6):
        asm.ld("r17", "r16", 8 * step)
        asm.ld("r18", "r16", 8 * step + 512)
        asm.add("r23", "r23", rb="r17")
        asm.xor("r24", "r24", rb="r18")
        asm.sra("r25", "r17", imm=3)
        asm.add("r26", "r26", rb="r25")
    asm.add("r28", "r28", rb="r23")
    asm.xor("r28", "r28", rb="r24")
    asm.add("r28", "r28", rb="r26")
    asm.add("r21", "r21", imm=RAY_BYTES)
    asm.sub("r20", "r20", imm=1)
    asm.bgt("r20", "ray_loop")
    asm.halt()
    program = asm.build()

    rng = Lcg(seed)
    image = dict(program.data)
    for i in range(512):
        image[scene_base + 8 * i] = rng.below(1 << 14)
    for i in range(rays):
        addr = rays_base + i * RAY_BYTES
        image[addr] = rng.below(1 << 14)
        image[addr + 8] = rng.below(1 << 14)
        image[addr + 16] = rng.below(64) + 1
    image[hits_addr] = 0

    slice_spec = _build_slice(
        fork_pc=fork_inst.pc,
        scene_base=scene_base,
        disc_branch_pc=disc_branch.pc,
        near_branch_pc=near_branch.pc,
        shadow_branch_pc=shadow_branch.pc,
        slice_kill_pc=program.pc_of("ray_next"),
    )

    return Workload(
        name="eon",
        program=program,
        memory_image=image,
        region=rays * 110,
        description="ray intersection tests (compute-bound, branchy)",
        slices=(slice_spec,),
        problem_branch_pcs=frozenset(
            {disc_branch.pc, near_branch.pc, shadow_branch.pc}
        ),
        problem_load_pcs=frozenset(),
        expectation=(
            "branch-only speedup (paper: 52% of mispredictions "
            "removed, insufficient misses to matter)"
        ),
    )


def _build_slice(
    fork_pc: int,
    scene_base: int,
    disc_branch_pc: int,
    near_branch_pc: int,
    shadow_branch_pc: int,
    slice_kill_pc: int,
) -> SliceSpec:
    """Straight-line slice computing all three intersection tests.

    Branches 2 and 3 are conditionally executed (each guarded by the
    previous test), so their unconsumed predictions rely on the slice
    kill at the rays' reconvergence point — the Figure 8 pattern.
    """
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x7000)
    asm.label("eon_slice")
    asm.comment("the NEXT ray (r21 still points at the current)")
    asm.ld("r1", "r21", 32)  # r21 live-in: ray pointer
    asm.ld("r2", "r21", 40)
    asm.ld("r3", "r21", 48)
    asm.and_("r4", "r1", imm=0x1FF8)
    asm.add("r4", "r4", imm=scene_base)
    asm.ld("r5", "r4")
    asm.mul("r6", "r1", rb="r2")
    asm.sra("r6", "r6", imm=14)
    asm.sub("r7", "r6", rb="r5")
    asm.comment("PGI 1: discriminant sign")
    pgi_disc = asm.cmplt("r12", "r7", imm=0)
    asm.mul("r8", "r7", rb="r3")
    asm.sra("r8", "r8", imm=6)
    asm.sub("r9", "r8", rb="r2")
    asm.comment("PGI 2: near-clip test")
    pgi_near = asm.cmplt("r13", "r9", imm=0)
    asm.add("r10", "r9", rb="r5")
    asm.and_("r10", "r10", imm=0x3F)
    asm.comment("PGI 3: shadow parity test")
    pgi_shadow = asm.cmplt("r14", "r10", imm=31)
    asm.halt()
    code = asm.build()

    return SliceSpec(
        name="eon_ray",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("eon_slice"),
        live_in_regs=(21,),
        pgis=(
            PGISpec(slice_pc=pgi_disc.pc, branch_pc=disc_branch_pc),
            PGISpec(slice_pc=pgi_near.pc, branch_pc=near_branch_pc, conditional=True),
            PGISpec(slice_pc=pgi_shadow.pc, branch_pc=shadow_branch_pc, conditional=True),
        ),
        kills=(KillSpec(slice_kill_pc, KillKind.SLICE),),
    )

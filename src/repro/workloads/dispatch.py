"""Extension workload: bytecode-interpreter dispatch (indirect targets).

Not part of the paper's twelve-benchmark suite. This kernel exists to
exercise the TARGET-kind PGI extension (the Roth et al. virtual-call
direction the paper's Section 7 frames as the complement of its
kill-based correlation): a `jr` dispatch through a jump table on a
random opcode stream defeats the cascading indirect predictor, while a
slice that reads the *next* opcode one iteration ahead computes the
next handler address near-perfectly.

The slice is pipelined one iteration ahead, so its kill uses the
``skip_scope="global"`` alignment (see
:class:`repro.slices.spec.KillSpec`). It forks every ~12 instructions
— far denser than the paper's slices — so it wants more than the
default 4 thread contexts; :data:`RECOMMENDED_CONFIG` provides 8.
"""

from __future__ import annotations

import dataclasses

from repro.isa.assembler import Assembler
from repro.slices.spec import (
    SLICE_CODE_BASE,
    KillKind,
    KillSpec,
    PGIKind,
    PGISpec,
    SliceSpec,
)
from repro.uarch.config import FOUR_WIDE
from repro.workloads.base import Lcg, Workload

#: The interpreter forks per iteration: give it ample idle contexts.
RECOMMENDED_CONFIG = dataclasses.replace(FOUR_WIDE, thread_contexts=8)


def build(scale: float = 1.0, seed: int = 3, kinds: int = 4) -> Workload:
    """Build the dispatch workload (600 ops per unit of scale... at
    ``scale=1.0``: 2400 bytecode ops over a *kinds*-way jump table)."""
    ops = max(int(2400 * scale), 64)

    asm = Assembler(base_pc=0x1000)
    bytecode = asm.data_space("bytecode", ops + 2)
    table = asm.data_space("table", kinds)

    asm.li("r21", bytecode)
    asm.li("r22", table)
    asm.li("r20", ops)
    asm.li("r28", 0)
    asm.label("loop")
    asm.comment("fork point: predict the NEXT dispatch")
    fork = asm.ld("r1", "r21")  # opcode
    asm.s8add("r2", "r1", "r22")
    asm.ld("r3", "r2")  # handler address
    dispatch = asm.jr("r3")
    for k in range(kinds):
        asm.label(f"h{k}")
        asm.add("r28", "r28", imm=k + 1)
        asm.xor("r28", "r28", imm=k * 5 + 3)
        asm.sra("r4", "r28", imm=1)
        asm.add("r28", "r28", rb="r4")
        asm.br("next")
    asm.label("next")
    asm.add("r21", "r21", imm=8)
    asm.sub("r20", "r20", imm=1)
    asm.bgt("r20", "loop")
    asm.halt()
    program = asm.build()

    rng = Lcg(seed)
    image = dict(program.data)
    for k in range(kinds):
        image[table + 8 * k] = program.pc_of(f"h{k}")
    for i in range(ops + 2):
        image[bytecode + 8 * i] = rng.below(kinds)

    sasm = Assembler(base_pc=SLICE_CODE_BASE + 0x70000)
    sasm.label("s")
    sasm.ld("r1", "r21", 8)  # next opcode (r21 live-in)
    sasm.s8add("r2", "r1", "r22")
    pgi = sasm.ld("r3", "r2")  # TARGET PGI: the handler address
    sasm.halt()
    code = sasm.build()
    spec = SliceSpec(
        name="dispatch_target",
        fork_pc=fork.pc,
        code=code,
        entry_pc=code.pc_of("s"),
        live_in_regs=(21, 22),
        pgis=(PGISpec(pgi.pc, branch_pc=dispatch.pc, kind=PGIKind.TARGET),),
        kills=(
            KillSpec(
                program.pc_of("next"),
                KillKind.SLICE,
                skip_first=True,
                skip_scope="global",
            ),
        ),
    )

    return Workload(
        name="dispatch",
        program=program,
        memory_image=image,
        region=ops * 40,
        description="interpreter dispatch via jump table (TARGET PGIs)",
        slices=(spec,),
        problem_branch_pcs=frozenset({dispatch.pc}),
        problem_load_pcs=frozenset(),
        expectation=(
            "extension demo: slice-computed indirect targets remove "
            "a large share of the dispatch mispredictions the "
            "cascading predictor cannot learn"
        ),
    )

"""SPEC2000int-analog synthetic workloads (one module per benchmark)."""

from repro.workloads.base import Lcg, SLICE_CODE_BASE, Workload

__all__ = ["Lcg", "SLICE_CODE_BASE", "Workload"]

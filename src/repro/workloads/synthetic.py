"""Registry adapter for generated (fuzz) workloads.

A fuzz workload's identity is its seed, carried in the name
(``fuzz-0x2a``), so the declarative plumbing that rebuilds workloads by
name — :class:`~repro.harness.parallel.RunRequest`, pool workers, the
run-cache fingerprint — works for generated programs exactly as it
does for the twelve paper benchmarks, with no registry entries and no
side channel: any process holding the name can rebuild the
byte-identical workload.
"""

from __future__ import annotations

from repro.workloads.base import Workload


def is_synthetic(name: str) -> bool:
    """Whether *name* denotes a generated (seed-named) workload."""
    from repro.fuzz.gen import NAME_PREFIX

    return name.startswith(NAME_PREFIX)


def build(name: str, scale: float = 1.0) -> Workload:
    """Build the generated workload *name* encodes (``fuzz-<seed>``)."""
    from repro.fuzz.gen import generate, parse_seed

    return generate(parse_seed(name), scale)

"""gcc analog: rtx tree walks dispatched on node type.

gcc's problem branches live in functions that switch on an rtx node's
code and recursively descend a subset of the operands. Slice
construction fails here (Section 6.2): "the unpredictability of the
traversal, coupled with the fact that computing the traversal order is
a substantial fraction of these functions, makes generating profitable
slices difficult" — a slice that predicts anything useful must
replicate most of the walker.

The kernel walks random binary rtx trees with an explicit stack,
switching on each node's type via an indirect jump (hard for the
cascading predictor) plus a leaf test (hard for YAGS). The one slice we
ship is the best that can be built without replicating the traversal —
a prefetch of the just-pushed child — and, as in the paper, it buys
approximately nothing.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.slices.spec import SliceSpec
from repro.workloads.base import SLICE_CODE_BASE, Lcg, Workload

NODE_BYTES = 32


def build(scale: float = 1.0, seed: int = 1984) -> Workload:
    """Build the gcc tree-walk workload.

    At ``scale=1.0``: 220 trees of ~127 nodes over a ~900KB arena,
    ~240k dynamic instructions.
    """
    trees = max(int(220 * scale), 8)
    depth = 7  # ~127 nodes per tree
    nodes_per_tree = (1 << depth) - 1
    total = trees * nodes_per_tree

    asm = Assembler(base_pc=0x1000)
    roots_base = asm.data_space("roots", trees)
    arena_base = asm.data_space("arena", total * (NODE_BYTES // 8))
    stack_base = asm.data_space("stack", 256)
    dispatch_base = asm.data_space("dispatch", 4)  # jump table

    asm.li("r20", trees)
    asm.li("r21", roots_base)
    asm.li("r22", stack_base)
    asm.li("r23", dispatch_base)
    asm.li("r28", 0)

    asm.label("tree_loop")
    fork_inst = asm.ld("r1", "r21")  # node = roots[k]
    asm.li("r2", 0)  # stack depth

    asm.label("visit")
    type_load = asm.ld("r3", "r1", 8)  # node->code (problem load)
    asm.and_("r4", "r3", imm=3)
    asm.s8add("r5", "r4", "r23")
    asm.ld("r6", "r5")
    asm.comment("problem branch: switch on rtx code (indirect)")
    switch_jump = asm.jr("r6")

    asm.label("case_binary")  # descend both: push right, go left
    asm.ld("r7", "r1", 24)  # right child
    asm.s8add("r8", "r2", "r22")
    asm.st("r7", "r8")
    asm.add("r2", "r2", imm=1)
    asm.ld("r1", "r1", 16)  # left child
    asm.comment("problem branch: leaf test on the left child")
    leaf_branch = asm.bne("r1", "visit")
    asm.br("pop")

    asm.label("case_unary")  # descend left only
    asm.add("r28", "r28", rb="r3")
    asm.ld("r1", "r1", 16)
    asm.bne("r1", "visit")
    asm.br("pop")

    asm.label("case_leaf")
    asm.xor("r28", "r28", rb="r3")
    asm.label("pop")
    asm.ble("r2", "tree_done")
    asm.sub("r2", "r2", imm=1)
    asm.s8add("r8", "r2", "r22")
    asm.ld("r1", "r8")
    asm.bne("r1", "visit")
    asm.br("pop")

    asm.label("tree_done")
    asm.add("r21", "r21", imm=8)
    asm.sub("r20", "r20", imm=1)
    asm.bgt("r20", "tree_loop")
    asm.halt()
    program = asm.build()

    rng = Lcg(seed)
    image = dict(program.data)
    image[dispatch_base] = program.pc_of("case_binary")
    image[dispatch_base + 8] = program.pc_of("case_unary")
    image[dispatch_base + 16] = program.pc_of("case_leaf")
    image[dispatch_base + 24] = program.pc_of("case_leaf")

    slots = list(range(total))
    for i in range(total - 1, 0, -1):
        j = rng.below(i + 1)
        slots[i], slots[j] = slots[j], slots[i]
    addr = [arena_base + s * NODE_BYTES for s in slots]
    index = 0
    for k in range(trees):
        # Heap-shaped tree over a contiguous index range, random codes.
        base = index
        image[roots_base + 8 * k] = addr[base]
        for i in range(nodes_per_tree):
            a = addr[base + i]
            left = base + 2 * i + 1
            right = base + 2 * i + 2
            is_internal = left < base + nodes_per_tree
            if is_internal:
                code = rng.below(2)  # binary or unary
            else:
                code = 2  # leaf
            image[a + 8] = code | (rng.below(1 << 12) << 2)
            image[a + 16] = addr[left] if is_internal else 0
            image[a + 24] = (
                addr[right] if right < base + nodes_per_tree else 0
            )
            index += 1
        index = base + nodes_per_tree

    slice_spec = _build_slice(fork_pc=program.pc_of("case_binary"),
                              type_load_pc=type_load.pc)

    return Workload(
        name="gcc",
        program=program,
        memory_image=image,
        region=total * 14 + trees * 8 + 16,
        description="rtx tree walk with type-switch dispatch",
        slices=(slice_spec,),
        problem_branch_pcs=frozenset({switch_jump.pc, leaf_branch.pc}),
        problem_load_pcs=frozenset({type_load.pc}),
        expectation=(
            "~no speedup: the traversal order is the bulk of the "
            "computation, so slices cannot run usefully ahead "
            "(Section 6.2)"
        ),
    )


def _build_slice(fork_pc: int, type_load_pc: int) -> SliceSpec:
    """Best-effort gcc slice: prefetch the left child's line.

    Cannot predict the switch (it would need the whole traversal), so
    it only warms the next node — and mostly arrives barely ahead.
    """
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0xB000)
    asm.label("gc_slice")
    asm.ld("r2", "r1", 16)  # left child of the current node (r1 live-in)
    pf_type = asm.ld("r3", "r2", 8)
    asm.halt()
    code = asm.build()

    return SliceSpec(
        name="gcc_child",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("gc_slice"),
        live_in_regs=(1,),
        prefetch_for={pf_type.pc: type_load_pc},
    )

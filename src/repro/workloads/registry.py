"""Workload registry: the twelve SPEC2000int analogs, in paper order."""

from __future__ import annotations

from typing import Callable

from repro.workloads import (
    bzip2,
    crafty,
    eon,
    gap,
    gcc,
    gzip,
    mcf,
    parser_wl,
    perl,
    twolf,
    vortex,
    vpr,
)
from repro.workloads.base import Workload

#: name -> builder, ordered as in the paper's tables.
WORKLOAD_BUILDERS: dict[str, Callable[..., Workload]] = {
    "bzip2": bzip2.build,
    "crafty": crafty.build,
    "eon": eon.build,
    "gap": gap.build,
    "gcc": gcc.build,
    "gzip": gzip.build,
    "mcf": mcf.build,
    "parser": parser_wl.build,
    "perl": perl.build,
    "twolf": twolf.build,
    "vortex": vortex.build,
    "vpr": vpr.build,
}

#: Benchmarks for which the paper constructed slices (Table 3 set plus
#: the Table 4 perl entry).
SLICE_BENCHMARKS = (
    "bzip2",
    "crafty",
    "eon",
    "gap",
    "gcc",
    "gzip",
    "mcf",
    "perl",
    "twolf",
    "vortex",
    "vpr",
)


def build(name: str, scale: float = 1.0) -> Workload:
    """Build workload *name* at the given *scale*.

    Besides the twelve registered benchmarks, seed-named generated
    workloads (``fuzz-0x2a``) dispatch to
    :mod:`repro.workloads.synthetic` — they carry their whole identity
    in the name, so they are rebuildable anywhere a request travels
    without being registry entries.
    """
    try:
        builder = WORKLOAD_BUILDERS[name]
    except KeyError:
        from repro.workloads import synthetic

        if synthetic.is_synthetic(name):
            return synthetic.build(name, scale=scale)
        known = ", ".join(WORKLOAD_BUILDERS)
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    workload = builder(scale=scale)
    workload.scale = scale
    return workload


def all_names() -> tuple[str, ...]:
    return tuple(WORKLOAD_BUILDERS)


def build_all(scale: float = 1.0) -> list[Workload]:
    """Build every workload at the given *scale*."""
    return [build(name, scale) for name in WORKLOAD_BUILDERS]

"""gap analog: tagged-bag traversal with per-element type dispatch.

gap (a group-theory interpreter) walks heterogeneous bags of tagged
objects; per element it branches on the tag and on computed properties
of the element — data-dependent, unbiased branches on freshly loaded
values. The slice mirrors the paper's gap slice (Table 3: 8 static / 5
in loop, 2 live-ins, 3 predictions per iteration, iteration limit 85):
it chases the same element list and pre-computes the dispatch tests.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.slices.spec import KillKind, KillSpec, PGISpec, SliceSpec
from repro.workloads.base import SLICE_CODE_BASE, Lcg, Workload

ELEM_BYTES = 32


def build(scale: float = 1.0, seed: int = 1993) -> Workload:
    """Build the gap bag-traversal workload.

    At ``scale=1.0``: 90 bags of ~40 elements over a 115KB arena,
    ~230k dynamic instructions.
    """
    bags = max(int(90 * scale), 8)
    bag_len = 40
    total = bags * bag_len

    asm = Assembler(base_pc=0x1000)
    heads_base = asm.data_space("heads", bags)
    arena_base = asm.data_space("arena", total * (ELEM_BYTES // 8))

    asm.li("r20", bags)
    asm.li("r21", heads_base)
    asm.li("r28", 0)
    asm.label("bag_loop")
    asm.comment("fork point: one slice per bag")
    fork_inst = asm.ld("r1", "r21")  # elem = heads[k]
    asm.beq("r1", "bag_done")

    asm.label("elem_loop")
    elem_load = asm.ld("r2", "r1", 8)  # tag
    asm.ld("r3", "r1", 16)  # value
    asm.and_("r4", "r2", imm=1)
    asm.comment("problem branch 1: tag class (unbiased)")
    tag_branch = asm.bne("r4", "tagged_path")
    asm.add("r28", "r28", rb="r3")
    asm.br("tag_done")
    asm.label("tagged_path")
    asm.sub("r5", "r3", imm=512)
    asm.comment("problem branch 2: value threshold (unbiased)")
    value_branch = asm.blt("r5", "small_value")
    asm.xor("r28", "r28", rb="r5")
    asm.br("tag_done")
    asm.label("small_value")
    asm.add("r28", "r28", imm=1)
    asm.label("tag_done")
    asm.sll("r6", "r28", imm=1)
    asm.xor("r28", "r28", rb="r6")
    asm.ld("r1", "r1")  # elem = elem->next
    asm.bne("r1", "elem_loop")

    asm.label("bag_done")
    asm.add("r21", "r21", imm=8)
    asm.sub("r20", "r20", imm=1)
    asm.bgt("r20", "bag_loop")
    asm.halt()
    program = asm.build()

    rng = Lcg(seed)
    image = dict(program.data)
    slots = list(range(total))
    for i in range(total - 1, 0, -1):
        j = rng.below(i + 1)
        slots[i], slots[j] = slots[j], slots[i]
    addr = [arena_base + s * ELEM_BYTES for s in slots]
    index = 0
    for k in range(bags):
        image[heads_base + 8 * k] = addr[index]
        for i in range(bag_len):
            a = addr[index]
            image[a] = addr[index + 1] if i < bag_len - 1 else 0
            image[a + 8] = rng.below(1 << 16)  # tag
            image[a + 16] = rng.below(1024)  # value
            index += 1

    slice_spec = _build_slice(
        fork_pc=fork_inst.pc,
        tag_branch_pc=tag_branch.pc,
        value_branch_pc=value_branch.pc,
        loop_kill_pc=program.pc_of("elem_loop"),
        slice_kill_pc=program.pc_of("bag_done"),
        elem_load_pc=elem_load.pc,
    )

    return Workload(
        name="gap",
        program=program,
        memory_image=image,
        region=total * 16 + bags * 8 + 16,
        description="tagged-bag traversal with per-element dispatch",
        slices=(slice_spec,),
        problem_branch_pcs=frozenset({tag_branch.pc, value_branch.pc}),
        problem_load_pcs=frozenset({elem_load.pc}),
        expectation=(
            "solid speedup from branches plus element prefetching "
            "(paper: 64% of mispredictions removed, ~50% of the "
            "speedup from loads)"
        ),
    )


def _build_slice(
    fork_pc: int,
    tag_branch_pc: int,
    value_branch_pc: int,
    loop_kill_pc: int,
    slice_kill_pc: int,
    elem_load_pc: int,
) -> SliceSpec:
    """Bag-chasing slice: element prefetch + 2 dispatch predictions."""
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x6000)
    asm.label("gap_slice")
    asm.ld("r1", "r21")  # r21 live-in: heads pointer
    asm.label("gap_loop")
    pf_elem = asm.ld("r2", "r1", 8)
    asm.ld("r3", "r1", 16)
    asm.comment("PGI 1: tag class")
    pgi_tag = asm.and_("r4", "r2", imm=1)
    asm.comment("PGI 2: value threshold (only consumed on tagged path)")
    pgi_value = asm.cmplt("r5", "r3", imm=512)
    asm.ld("r1", "r1")
    back = asm.bne("r1", "gap_loop")
    asm.halt()
    code = asm.build()

    return SliceSpec(
        name="gap_bag",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("gap_slice"),
        live_in_regs=(21,),
        pgis=(
            PGISpec(slice_pc=pgi_tag.pc, branch_pc=tag_branch_pc),
            PGISpec(slice_pc=pgi_value.pc, branch_pc=value_branch_pc, conditional=True),
        ),
        kills=(
            KillSpec(loop_kill_pc, KillKind.LOOP, skip_first=True),
            KillSpec(slice_kill_pc, KillKind.SLICE),
        ),
        max_iterations=85,
        loop_back_pc=back.pc,
        prefetch_for={pf_elem.pc: elem_load_pc},
    )

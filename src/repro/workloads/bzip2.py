"""bzip2 analog: block-sorting partition scans.

bzip2's compression sorts rotations of large blocks; the inner
quicksort/shell-sort scan loops compare data-dependent keys, so the
scan-exit branch is unbiased and mispredicts constantly, while the
block itself streams through the cache (the stream prefetcher covers
most of the memory side — the paper's bzip2 gets only ~10% of its
speedup from loads).

Per round, the kernel scans forward from a cursor until it finds an
element greater than the round's pivot (geometric run lengths), then
does bookkeeping work. The slice mirrors the paper's bzip2 slice
(Table 3: 8 static / 7 in loop, 1 prefetch + 2 predictions per
iteration): it runs the same scan ahead of the main thread, predicting
both the scan-exit test and the parity test the loop body applies to
each element.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.slices.spec import KillKind, KillSpec, PGISpec, SliceSpec
from repro.workloads.base import SLICE_CODE_BASE, Lcg, Workload


def build(scale: float = 1.0, seed: int = 1994) -> Workload:
    """Build the bzip2 scan workload.

    At ``scale=1.0``: a 96K-word block (768KB, streaming) scanned by
    2600 pivot rounds, ~230k dynamic instructions.
    """
    block_words = max(int(96_000 * scale), 4096)
    rounds = max(int(2600 * scale), 40)

    asm = Assembler(base_pc=0x1000)
    block_base = asm.data_space("block", block_words)
    pivots_base = asm.data_space("pivots", rounds)
    cursor_addr = asm.data_word("cursor", block_base)

    asm.li("r20", rounds)
    asm.li("r21", pivots_base)
    asm.li("r27", block_base + 8 * (block_words - 64))  # wrap limit
    asm.li("r28", 0)  # checksum

    asm.label("round_loop")
    asm.comment("fork point: one scan per pivot round")
    fork_inst = asm.li("r19", cursor_addr)
    asm.ld("r1", "r19")  # i = cursor
    asm.ld("r2", "r21")  # pivot

    asm.label("scan_loop")
    asm.comment("block[i] (streams; mostly prefetched)")
    scan_load = asm.ld("r3", "r1")
    asm.and_("r4", "r3", imm=1)
    asm.comment("problem branch 1: per-element parity test (unbiased)")
    parity_branch = asm.bne("r4", "odd_elem")
    asm.add("r28", "r28", rb="r3")
    asm.br("parity_done")
    asm.label("odd_elem")
    asm.xor("r28", "r28", rb="r3")
    asm.label("parity_done")
    asm.cmple("r5", "r3", rb="r2")
    asm.add("r1", "r1", imm=8)
    asm.comment("problem branch 2: scan continues while block[i] <= pivot")
    scan_branch = asm.bgt("r5", "scan_loop")

    asm.label("round_done")
    asm.comment("bookkeeping between scans")
    asm.cmplt("r6", "r1", rb="r27")
    asm.li("r7", block_base)
    asm.cmoveq("r1", "r6", "r7")  # wrap cursor when near block end
    asm.st("r1", "r19")
    asm.sra("r8", "r28", imm=3)
    asm.xor("r28", "r28", rb="r8")
    asm.add("r21", "r21", imm=8)
    asm.sub("r20", "r20", imm=1)
    asm.bgt("r20", "round_loop")
    asm.halt()
    program = asm.build()

    rng = Lcg(seed)
    image = dict(program.data)
    for i in range(block_words):
        image[block_base + 8 * i] = rng.below(1 << 20)
    # Pivots sit high in the value range so scans average ~4 elements
    # (continue-probability between .70 and .82 keeps tails bounded).
    for i in range(rounds):
        image[pivots_base + 8 * i] = (7 * (1 << 20)) // 10 + rng.below(1 << 17)

    slice_spec = _build_slice(
        fork_pc=fork_inst.pc,
        cursor_addr=cursor_addr,
        parity_branch_pc=parity_branch.pc,
        scan_branch_pc=scan_branch.pc,
        loop_kill_pc=program.pc_of("scan_loop"),
        slice_kill_pc=program.pc_of("round_done"),
        scan_load_pc=scan_load.pc,
    )

    return Workload(
        name="bzip2",
        program=program,
        memory_image=image,
        region=rounds * 150,
        description="pivot scan loops over a streaming block",
        slices=(slice_spec,),
        problem_branch_pcs=frozenset({parity_branch.pc, scan_branch.pc}),
        problem_load_pcs=frozenset({scan_load.pc}),
        expectation=(
            "solid speedup, mostly from branches (~10% from loads; "
            "paper: 37% of mispredictions and 46% of misses removed)"
        ),
    )


def _build_slice(
    fork_pc: int,
    cursor_addr: int,
    parity_branch_pc: int,
    scan_branch_pc: int,
    loop_kill_pc: int,
    slice_kill_pc: int,
    scan_load_pc: int,
) -> SliceSpec:
    """Scan-ahead slice: 2 predictions + 1 prefetch per iteration."""
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x3000)
    asm.label("bz_slice")
    asm.li("r19", cursor_addr)
    asm.ld("r1", "r19")  # i = cursor
    asm.ld("r2", "r21")  # pivot (r21 live-in: pivot pointer)
    asm.label("bz_loop")
    pf_load = asm.ld("r3", "r1")
    asm.comment("PGI 1: element parity")
    pgi_parity = asm.and_("r4", "r3", imm=1)
    asm.comment("PGI 2: scan continues")
    pgi_scan = asm.cmple("r5", "r3", rb="r2")
    asm.add("r1", "r1", imm=8)
    back = asm.bgt("r5", "bz_loop")
    asm.halt()
    code = asm.build()

    return SliceSpec(
        name="bzip2_scan",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("bz_slice"),
        live_in_regs=(21,),
        pgis=(
            PGISpec(slice_pc=pgi_parity.pc, branch_pc=parity_branch_pc),
            PGISpec(slice_pc=pgi_scan.pc, branch_pc=scan_branch_pc),
        ),
        kills=(
            KillSpec(loop_kill_pc, KillKind.LOOP, skip_first=True),
            KillSpec(slice_kill_pc, KillKind.SLICE),
        ),
        max_iterations=16,
        loop_back_pc=back.pc,
        prefetch_for={pf_load.pc: scan_load_pc},
    )

"""twolf analog: placement-swap cost evaluation.

twolf (standard-cell placement) repeatedly picks cells, dereferences
their records to read coordinates, computes a cost delta, and branches
on whether to accept the swap — a data-dependent, unbiased decision on
freshly loaded data. The cell records are scattered over an arena
larger than the L1, so the coordinate loads are problem loads.

The slice covers one swap evaluation: it dereferences both cells
(prefetching their lines) and computes the accept test as a PGI
(paper's twolf slice: 8 static instructions, 2 live-ins; Table 4:
33% of mispredictions removed, ~10% of the speedup from loads).
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.slices.spec import KillKind, KillSpec, PGISpec, SliceSpec
from repro.workloads.base import SLICE_CODE_BASE, Lcg, Workload

CELL_BYTES = 64


def build(scale: float = 1.0, seed: int = 1988) -> Workload:
    """Build the twolf swap workload.

    At ``scale=1.0``: 4000 cells (256KB of records) and 2200 swap
    evaluations, ~210k dynamic instructions.
    """
    cells = max(int(4000 * scale), 128)
    swaps = max(int(2200 * scale), 40)

    asm = Assembler(base_pc=0x1000)
    arena_base = asm.data_space("cells", cells * (CELL_BYTES // 8))
    pairs_base = asm.data_space("pairs", swaps * 2)
    accept_count = asm.data_word("accepts", 0)
    hist_base = asm.data_space("hist", 512)  # L1-resident histogram
    asm.li("r20", swaps)
    asm.li("r21", pairs_base)
    asm.li("r19", accept_count)
    asm.li("r28", 0)
    asm.label("swap_loop")
    fork_inst = None  # assigned at the hoisted fork point below
    asm.ld("r1", "r21")
    asm.ld("r2", "r21", 8)
    load_ax = asm.ld("r4", "r1")
    load_bx = asm.ld("r5", "r2")
    asm.ld("r6", "r1", 8)
    asm.ld("r7", "r2", 8)
    asm.sub("r8", "r4", rb="r5")
    asm.sub("r9", "r6", rb="r7")
    asm.add("r10", "r8", rb="r9")
    asm.ld("r11", "r1", 16)
    asm.mul("r12", "r10", rb="r11")
    asm.sra("r12", "r12", imm=4)
    asm.comment("problem branch: accept if weighted delta negative")
    accept_branch = asm.blt("r12", "do_accept")
    asm.xor("r28", "r28", rb="r12")
    asm.br("swap_done")
    asm.label("do_accept")
    asm.st("r5", "r1")
    asm.st("r4", "r2")
    asm.ld("r13", "r19")
    asm.add("r13", "r13", imm=1)
    asm.st("r13", "r19")
    asm.label("swap_done")
    asm.comment("fork point for the NEXT swap (hoisted past bookkeeping)")
    fork_inst = asm.add("r14", "r28", imm=0)
    asm.comment("wirelength bookkeeping between swaps (fork lead)")
    for step in range(5):
        asm.and_("r15", "r14", imm=0xFF8)
        asm.add("r16", "r15", imm=hist_base)
        asm.ld("r17", "r16")
        asm.add("r17", "r17", imm=1)
        asm.st("r17", "r16")
        asm.sra("r14", "r14", imm=2)
        asm.xor("r14", "r14", rb="r17")
    asm.add("r28", "r28", rb="r14")
    asm.add("r21", "r21", imm=16)
    asm.sub("r20", "r20", imm=1)
    asm.bgt("r20", "swap_loop")
    asm.halt()
    program = asm.build()

    rng = Lcg(seed)
    image = dict(program.data)
    for i in range(cells):
        addr = arena_base + i * CELL_BYTES
        image[addr] = rng.below(4096)  # x
        image[addr + 8] = rng.below(4096)  # y
        image[addr + 16] = rng.below(7) + 1  # weight
    for i in range(swaps):
        a = rng.below(cells)
        b = rng.below(cells)
        image[pairs_base + 16 * i] = arena_base + a * CELL_BYTES
        image[pairs_base + 16 * i + 8] = arena_base + b * CELL_BYTES

    slice_spec = _build_slice(
        fork_pc=fork_inst.pc,
        accept_branch_pc=accept_branch.pc,
        slice_kill_pc=program.pc_of("swap_done"),
        load_ax_pc=load_ax.pc,
        load_bx_pc=load_bx.pc,
    )

    return Workload(
        name="twolf",
        program=program,
        memory_image=image,
        region=swaps * 95,
        description="placement-swap accept/reject evaluation",
        slices=(slice_spec,),
        problem_branch_pcs=frozenset({accept_branch.pc}),
        problem_load_pcs=frozenset({load_ax.pc, load_bx.pc}),
        expectation=(
            "moderate speedup, mostly branches (paper: 33% of "
            "mispredictions removed, 12% miss reduction, ~10% of the "
            "speedup from loads)"
        ),
    )


def _build_slice(
    fork_pc: int,
    accept_branch_pc: int,
    slice_kill_pc: int,
    load_ax_pc: int,
    load_bx_pc: int,
) -> SliceSpec:
    """Straight-line swap-evaluation slice: 2 prefetches + 1 PGI."""
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x5000)
    asm.label("tw_slice")
    asm.comment("the NEXT swap's pair (r21 still points at the current)")
    asm.ld("r1", "r21", 16)  # r21 live-in: pair pointer
    asm.ld("r2", "r21", 24)
    pf_a = asm.ld("r4", "r1")
    pf_b = asm.ld("r5", "r2")
    asm.ld("r6", "r1", 8)
    asm.ld("r7", "r2", 8)
    asm.sub("r8", "r4", rb="r5")
    asm.sub("r9", "r6", rb="r7")
    asm.add("r10", "r8", rb="r9")
    asm.ld("r11", "r1", 16)
    asm.mul("r12", "r10", rb="r11")
    asm.comment("PGI: accept test (sign survives the shift)")
    pgi_inst = asm.cmplt("r13", "r12", imm=0)
    asm.halt()
    code = asm.build()

    return SliceSpec(
        name="twolf_swap",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("tw_slice"),
        live_in_regs=(21,),
        pgis=(PGISpec(slice_pc=pgi_inst.pc, branch_pc=accept_branch_pc),),
        kills=(KillSpec(slice_kill_pc, KillKind.SLICE),),
        prefetch_for={pf_a.pc: load_ax_pc, pf_b.pc: load_bx_pc},
    )

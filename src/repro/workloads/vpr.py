"""vpr analog: the paper's running example (Figures 2-5).

The kernel is ``add_to_heap`` exactly as in Figure 2: a binary heap of
*pointers* to cost-carrying elements, stored as an array where node N's
children live at 2N and 2N+1. Each insertion appends at ``heap_tail``
and trickles the new element up while its cost is less than its
parent's.

Problem instructions (Section 2.4):

* the load of ``heap[ito]->cost`` (line 6) — the heap holds thousands
  of elements, so the element structs don't fit in the L1 and this
  pointer dereference misses;
* the comparison branch (also line 6) — the average trickle distance is
  2-3 iterations, leaving the branch unbiased and data-dependent.

The hand slice mirrors Figure 5, including both paper optimizations:

* *register allocation*: ``heap[ifrom]->cost`` is always the inserted
  ``cost``, so the slice takes it as a live-in and drops all
  ``heap[ifrom]`` loads and the swap stores;
* *strength reduction*: ``ito = ifrom/2`` is a bare arithmetic shift
  (``ifrom`` is never negative).

One deviation from Figure 2: ``heap_tail++`` is moved to after the
trickle loop (sequentially equivalent — the loop uses only registers).
In the paper's machine the slice's load of ``heap_tail`` sees committed
memory, which the in-flight increment has not reached; our simulator
executes main-thread stores into the shared image at fetch, so the move
restores the paper's semantics (the slice reads the pre-insertion
tail).
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.slices.spec import KillKind, KillSpec, PGISpec, SliceSpec
from repro.workloads.base import SLICE_CODE_BASE, Lcg, Workload

#: Bytes per heap-element struct (cost lives at offset 8).
STRUCT_BYTES = 48


def build(scale: float = 1.0, seed: int = 2001) -> Workload:
    """Build the vpr heap-insertion workload.

    At ``scale=1.0``: a 6000-element initial heap (the pointer array
    plus ~280KB of element structs exceed the 64KB L1) and 3500
    insertions, ~250k dynamic instructions.
    """
    heap_size = max(int(6000 * scale), 64)
    insertions = max(int(1800 * scale), 32)
    capacity = heap_size + insertions + 2

    asm = Assembler(base_pc=0x1000)
    heap_base = asm.data_space("heap", capacity)
    heap_tail_addr = asm.data_word("heap_tail", heap_size + 1)
    arena_base = asm.data_space("arena", capacity * (STRUCT_BYTES // 8))
    arena_next_addr = asm.data_word("arena_next", 0)  # patched below
    costs_base = asm.data_space("costs", insertions)
    # L1-resident scratch the routing-cost phase reads (real vpr
    # evaluates net costs between heap operations).
    net_base = asm.data_space("net", 1024)

    # ------------------------------------------------------------------
    # Driver: per insertion, a routing-cost computation phase (as in
    # vpr's router, which does substantial work between heap
    # operations) and then node_to_heap(cost). The fork point is the
    # top of the loop body, hoisted past the whole compute phase
    # (Section 3.2's fork-point hoisting): ~130 dynamic instructions of
    # lead before the problem loop.
    # ------------------------------------------------------------------
    asm.li("r20", insertions)
    asm.li("r21", costs_base)
    asm.li("r22", net_base)
    asm.label("driver_loop")
    asm.comment("fork point (hoisted past the routing-cost phase)")
    fork_inst = asm.and_("r23", "r20", imm=63)
    asm.sll("r23", "r23", imm=6)
    asm.add("r23", "r23", rb="r22")
    # Unrolled "net cost" evaluation: ILP-rich, L1-resident.
    for step in range(8):
        asm.ld("r24", "r23", 8 * step)
        asm.ld("r25", "r23", 8 * step + 256)
        asm.add("r26", "r24", rb="r25")
        asm.xor("r27", "r24", rb="r25")
        asm.sra("r26", "r26", imm=2)
        asm.add("r28", "r28", rb="r26")
        asm.and_("r27", "r27", imm=0xFFFF)
        asm.add("r28", "r28", rb="r27")
        asm.sll("r25", "r25", imm=1)
        asm.xor("r28", "r28", rb="r25")
    asm.st("r28", "r22", 8184)
    asm.comment("cost argument")
    asm.ld("r17", "r21")
    asm.call("node_to_heap")
    asm.add("r21", "r21", imm=8)
    asm.sub("r20", "r20", imm=1)
    asm.bgt("r20", "driver_loop")
    asm.halt()

    # ------------------------------------------------------------------
    # node_to_heap (Figure 3): allocates an element, fills its fields,
    # then falls into the inlined add_to_heap. The first instruction is
    # the slice fork point, ~40 dynamic instructions before the loop.
    # ------------------------------------------------------------------
    asm.label("node_to_heap")
    asm.comment("hptr = alloc_heap_data()")
    asm.li("r10", arena_next_addr)
    asm.ld("r11", "r10")  # hptr
    asm.add("r12", "r11", imm=STRUCT_BYTES)
    asm.st("r12", "r10")  # bump arena_next
    asm.comment("hptr->cost = cost")
    asm.st("r17", "r11", 8)
    # Remaining field initialization (index, u.first, u.next, flags...)
    # mirrors the work node_to_heap does before add_to_heap in vpr and
    # provides the fork-to-problem distance of Section 3.2.
    asm.li("r13", 0)
    asm.st("r13", "r11", 16)
    asm.st("r13", "r11", 24)
    asm.add("r14", "r17", imm=1)
    asm.st("r14", "r11", 32)
    asm.sra("r15", "r17", imm=4)
    asm.st("r15", "r11", 40)
    asm.and_("r16", "r17", imm=0xFF)
    asm.add("r16", "r16", rb="r15")
    asm.sll("r16", "r16", imm=1)
    asm.st("r16", "r11", 0)

    # ------------------------------------------------------------------
    # add_to_heap (Figure 2), inlined by the compiler as in the paper.
    # ------------------------------------------------------------------
    asm.comment("ifrom = heap_tail")
    asm.li("r1", heap_tail_addr)
    asm.ld("r2", "r1")
    asm.li("r5", heap_base)
    asm.comment("heap[heap_tail] = hptr")
    asm.s8add("r3", "r2", "r5")
    asm.st("r11", "r3")
    asm.comment("ito = ifrom / 2: the compiler's 3-instruction signed-")
    asm.comment("division sequence (Figure 4 note); slices strength-")
    asm.comment("reduce it to a bare shift")
    asm.cmplt("r6", "r2", imm=0)
    asm.add("r6", "r2", rb="r6")
    asm.sra("r6", "r6", imm=1)
    asm.ble("r6", "heap_return")

    asm.label("heap_loop")
    asm.s8add("r7", "r2", "r5")  # &heap[ifrom]
    asm.s8add("r8", "r6", "r5")  # &heap[ito]
    load_ifrom_ptr = asm.ld("r9", "r7")  # heap[ifrom]
    load_ito_ptr = asm.ld("r10", "r8")  # heap[ito]
    asm.comment("heap[ifrom]->cost")
    load_ifrom_cost = asm.ld("r12", "r9", 8)
    asm.comment("heap[ito]->cost (problem load)")
    load_ito_cost = asm.ld("r13", "r10", 8)
    asm.cmplt("r14", "r12", rb="r13")
    asm.comment("problem branch: exit unless cost < parent cost")
    problem_branch = asm.beq("r14", "heap_return")
    asm.comment("swap heap[ito] <-> heap[ifrom]")
    asm.st("r9", "r8")
    asm.st("r10", "r7")
    asm.mov("r2", "r6")  # ifrom = ito
    asm.cmplt("r6", "r2", imm=0)  # ito = ifrom / 2 (division sequence)
    asm.add("r6", "r2", rb="r6")
    asm.sra("r6", "r6", imm=1)
    back_edge = asm.bgt("r6", "heap_loop")

    asm.label("heap_return")
    asm.comment("heap_tail++ (moved past the loop; see module docstring)")
    asm.ld("r4", "r1")
    asm.add("r4", "r4", imm=1)
    asm.st("r4", "r1")
    asm.ret()

    program = asm.build()

    # ------------------------------------------------------------------
    # Initial memory: a valid heap of heap_size elements. A sorted cost
    # array placed 1..heap_size satisfies the heap invariant (every
    # parent index is smaller, hence holds a smaller cost).
    # ------------------------------------------------------------------
    rng = Lcg(seed)
    image = dict(program.data)
    initial_costs = sorted(rng.below(1 << 34) for _ in range(heap_size))
    for i, cost in enumerate(initial_costs, start=1):
        struct_addr = arena_base + i * STRUCT_BYTES
        image[heap_base + 8 * i] = struct_addr
        image[struct_addr + 8] = cost
    image[arena_next_addr] = arena_base + (heap_size + 1) * STRUCT_BYTES
    # Insertion costs: squared uniforms skew small, giving the paper's
    # 2-3 iteration average trickle distance (Section 2.4).
    for i in range(insertions):
        draw = rng.below(1 << 17)
        image[costs_base + 8 * i] = draw * draw

    slice_spec = _build_slice(
        fork_pc=fork_inst.pc,
        heap_base=heap_base,
        heap_tail_addr=heap_tail_addr,
        problem_branch_pc=problem_branch.pc,
        loop_kill_pc=program.pc_of("heap_loop"),
        slice_kill_pc=program.pc_of("heap_return"),
        load_ito_ptr_pc=load_ito_ptr.pc,
        load_ito_cost_pc=load_ito_cost.pc,
    )

    region = insertions * 220  # generous cap; the run ends at HALT
    return Workload(
        name="vpr",
        program=program,
        memory_image=image,
        region=region,
        description="heap insertion trickle-up (Figure 2)",
        slices=(slice_spec,),
        problem_branch_pcs=frozenset({problem_branch.pc}),
        problem_load_pcs=frozenset({load_ito_cost.pc, load_ito_ptr.pc}),
        expectation=(
            "large speedup; ~50% of the benefit from prefetching "
            "(paper: 43% speedup, 72% of mispredictions and 64% of "
            "misses removed)"
        ),
    )


def _slice_anchors(workload: Workload) -> dict[str, int]:
    """Recover the PCs/addresses a vpr slice variant needs from a built
    workload (used by the ablation benches and examples)."""
    program = workload.program
    (problem_branch_pc,) = workload.problem_branch_pcs
    cost_load_pc = next(
        pc
        for pc in workload.problem_load_pcs
        if program.at(pc).imm == 8  # heap[ito]->cost
    )
    ptr_load_pc = next(
        pc for pc in workload.problem_load_pcs if pc != cost_load_pc
    )
    return {
        "heap_base": program.addr_of("heap"),
        "heap_tail_addr": program.addr_of("heap_tail"),
        "problem_branch_pc": problem_branch_pc,
        "loop_kill_pc": program.pc_of("heap_loop"),
        "slice_kill_pc": program.pc_of("heap_return"),
        "load_ito_ptr_pc": ptr_load_pc,
        "load_ito_cost_pc": cost_load_pc,
        "driver_fork_pc": workload.slices[0].fork_pc,
        "callee_fork_pc": program.pc_of("node_to_heap"),
    }


def late_fork_slice(workload: Workload) -> SliceSpec:
    """Slice variant forked at ``node_to_heap`` instead of the driver.

    This is the paper's original Figure 3 fork point — only ~40 dynamic
    instructions of lead, demonstrating the fork-distance trade-off of
    Section 3.2 (cost is already in r17 there, so it is the live-in, as
    in Figure 5).
    """
    anchors = _slice_anchors(workload)
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x40000)
    asm.label("slice")
    asm.li("r6", anchors["heap_base"])
    asm.li("r4", anchors["heap_tail_addr"])
    asm.ld("r3", "r4")
    asm.label("slice_loop")
    asm.sra("r3", "r3", imm=1)
    asm.s8add("r16", "r3", "r6")
    pf_ptr = asm.ld("r18", "r16")
    pf_cost = asm.ld("r1", "r18", 8)
    pgi = asm.cmple("r2", "r1", rb="r17")
    asm.bne("r2", "slice_exit")
    back = asm.bgt("r3", "slice_loop")
    asm.label("slice_exit")
    asm.halt()
    code = asm.build()
    return SliceSpec(
        name="vpr_heap_late",
        fork_pc=anchors["callee_fork_pc"],
        code=code,
        entry_pc=code.pc_of("slice"),
        live_in_regs=(17,),
        pgis=(PGISpec(pgi.pc, anchors["problem_branch_pc"]),),
        kills=(
            KillSpec(anchors["loop_kill_pc"], KillKind.LOOP, skip_first=True),
            KillSpec(anchors["slice_kill_pc"], KillKind.SLICE),
        ),
        max_iterations=4,
        loop_back_pc=back.pc,
        prefetch_for={
            pf_ptr.pc: anchors["load_ito_ptr_pc"],
            pf_cost.pc: anchors["load_ito_cost_pc"],
        },
    )


def unoptimized_slice(workload: Workload) -> SliceSpec:
    """The raw backward slice before the Section 3.2 optimizations.

    Mirrors Figure 4's shaded region: without *register allocation*
    it reloads ``heap[ifrom]`` and its cost every iteration, and
    without *strength reduction* it keeps the compiler's 3-instruction
    signed-division sequence. It is bigger, slower, and — because
    ``heap[ifrom]`` communicates through memory the main thread has not
    yet written — far less accurate; the optimization ablation
    quantifies the damage.
    """
    anchors = _slice_anchors(workload)
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x50000)
    asm.label("slice")
    asm.ld("r17", "r21")  # cost (unused: kept live for fidelity)
    asm.li("r6", anchors["heap_base"])
    asm.li("r4", anchors["heap_tail_addr"])
    asm.ld("r2", "r4")  # ifrom = heap_tail
    asm.cmplt("r9", "r2", imm=0)
    asm.add("r3", "r2", rb="r9")
    asm.sra("r3", "r3", imm=1)  # ito = ifrom / 2 (full division sequence)
    asm.label("slice_loop")
    asm.s8add("r7", "r2", "r6")  # &heap[ifrom]
    asm.s8add("r16", "r3", "r6")  # &heap[ito]
    asm.ld("r10", "r7")  # heap[ifrom]  (memory communication!)
    pf_ptr = asm.ld("r18", "r16")  # heap[ito]
    asm.ld("r11", "r10", 8)  # heap[ifrom]->cost
    pf_cost = asm.ld("r1", "r18", 8)  # heap[ito]->cost
    pgi = asm.cmple("r12", "r1", rb="r11")
    asm.bne("r12", "slice_exit")
    asm.mov("r2", "r3")  # ifrom = ito
    asm.cmplt("r9", "r2", imm=0)
    asm.add("r3", "r2", rb="r9")
    asm.sra("r3", "r3", imm=1)
    back = asm.bgt("r3", "slice_loop")
    asm.label("slice_exit")
    asm.halt()
    code = asm.build()
    return SliceSpec(
        name="vpr_heap_unopt",
        fork_pc=anchors["driver_fork_pc"],
        code=code,
        entry_pc=code.pc_of("slice"),
        live_in_regs=(21,),
        pgis=(PGISpec(pgi.pc, anchors["problem_branch_pc"]),),
        kills=(
            KillSpec(anchors["loop_kill_pc"], KillKind.LOOP, skip_first=True),
            KillSpec(anchors["slice_kill_pc"], KillKind.SLICE),
        ),
        max_iterations=4,
        loop_back_pc=back.pc,
        prefetch_for={
            pf_ptr.pc: anchors["load_ito_ptr_pc"],
            pf_cost.pc: anchors["load_ito_cost_pc"],
        },
    )


def _build_slice(
    fork_pc: int,
    heap_base: int,
    heap_tail_addr: int,
    problem_branch_pc: int,
    loop_kill_pc: int,
    slice_kill_pc: int,
    load_ito_ptr_pc: int,
    load_ito_cost_pc: int,
) -> SliceSpec:
    """The optimized slice of Figure 5.

    Deviations from the figure, both standard slice-construction moves:
    the fork is hoisted to the driver loop so the slice loads ``cost``
    itself (live-in is the cost-array pointer, available a full
    compute phase earlier), and the loop exits through the condition
    the PGI already computes (the trickle-stop test), keeping the
    prediction count near the 2-3 iteration average instead of running
    to the iteration bound.
    """
    asm = Assembler(base_pc=SLICE_CODE_BASE)
    asm.label("slice")
    asm.comment("cost (r21 is the live-in cost-array pointer)")
    asm.ld("r17", "r21")
    asm.comment("&heap")
    asm.li("r6", heap_base)
    asm.comment("ito = heap_tail")
    asm.li("r4", heap_tail_addr)
    asm.ld("r3", "r4")
    asm.label("slice_loop")
    asm.comment("ito /= 2")
    asm.sra("r3", "r3", imm=1)
    asm.comment("&heap[ito]")
    asm.s8add("r16", "r3", "r6")
    asm.comment("heap[ito] (prefetch)")
    prefetch_ptr = asm.ld("r18", "r16")
    asm.comment("heap[ito]->cost (prefetch; faults at the root sentinel)")
    prefetch_cost = asm.ld("r1", "r18", 8)
    asm.comment("PGI: (heap[ito]->cost <= cost) == problem branch taken")
    pgi_inst = asm.cmple("r2", "r1", rb="r17")
    asm.comment("slice exit: the PGI value is the trickle-stop condition")
    asm.bne("r2", "slice_exit")
    back = asm.bgt("r3", "slice_loop")
    asm.label("slice_exit")
    asm.halt()
    code = asm.build()

    return SliceSpec(
        name="vpr_heap",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("slice"),
        live_in_regs=(21,),  # &costs[i]; the cost itself ($f17) is loaded
        pgis=(PGISpec(slice_pc=pgi_inst.pc, branch_pc=problem_branch_pc),),
        kills=(
            KillSpec(loop_kill_pc, KillKind.LOOP, skip_first=True),
            KillSpec(slice_kill_pc, KillKind.SLICE),
        ),
        # Runaway bound (Section 3.2): the exit test terminates typical
        # trickles (average 2-3); the bound covers the deep tail up to
        # the correlator's slot capacity.
        max_iterations=8,
        loop_back_pc=back.pc,
        prefetch_for={
            prefetch_ptr.pc: load_ito_ptr_pc,
            prefetch_cost.pc: load_ito_cost_pc,
        },
    )

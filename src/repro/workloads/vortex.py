"""vortex analog: OO-database record validation (high base IPC).

vortex resisted slices for mundane reasons (Section 6.2): its baseline
IPC is within ~13% of the machine's peak, so stealing fetch slots for
helper threads is expensive, and its problem instructions miss or
mispredict rarely, so slice overhead is paid on every fork but pays off
seldom. The kernel is an ILP-rich record checksum/validation pass with
one occasionally-missing indirection; the slice is the paper's
4-instruction prefetch-only vortex slice (1 prefetch, 0 predictions).
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.slices.spec import SliceSpec
from repro.workloads.base import SLICE_CODE_BASE, Lcg, Workload

RECORD_WORDS = 8


def build(scale: float = 1.0, seed: int = 1999) -> Workload:
    """Build the vortex validation workload.

    At ``scale=1.0``: 2400 record validations, mostly L1-resident,
    ~240k dynamic instructions near peak IPC.
    """
    records = max(int(2400 * scale), 40)
    # A modest object arena; most links stay L1-resident.
    objects = max(int(3000 * scale), 128)

    asm = Assembler(base_pc=0x1000)
    recs_base = asm.data_space("records", records * RECORD_WORDS)
    objs_base = asm.data_space("objects", objects * 4)

    asm.li("r20", records)
    asm.li("r21", recs_base)
    asm.li("r28", 0)

    asm.label("rec_loop")
    asm.comment("fork point: prefetch the record's object link")
    fork_inst = asm.ld("r1", "r21")  # object pointer (sometimes cold)
    asm.ld("r2", "r21", 8)
    asm.ld("r3", "r21", 16)
    asm.ld("r4", "r21", 24)
    asm.comment("ILP-rich field validation")
    asm.add("r5", "r2", rb="r3")
    asm.xor("r6", "r3", rb="r4")
    asm.sra("r7", "r2", imm=3)
    asm.add("r8", "r5", rb="r6")
    asm.and_("r9", "r8", imm=0xFFFF)
    asm.add("r23", "r23", rb="r9")
    asm.xor("r24", "r24", rb="r7")
    obj_load = asm.ld("r10", "r1")  # object header (problem load)
    asm.add("r11", "r10", rb="r9")
    asm.sll("r12", "r11", imm=1)
    asm.xor("r25", "r25", rb="r12")
    asm.add("r26", "r26", rb="r2")
    asm.sra("r13", "r6", imm=2)
    asm.add("r27", "r27", rb="r13")
    asm.add("r28", "r28", rb="r11")
    asm.add("r21", "r21", imm=8 * RECORD_WORDS)
    asm.sub("r20", "r20", imm=1)
    asm.bgt("r20", "rec_loop")
    asm.halt()
    program = asm.build()

    rng = Lcg(seed)
    image = dict(program.data)
    hot = [objs_base + 32 * rng.below(min(objects, 512)) for _ in range(64)]
    for i in range(objects):
        image[objs_base + 32 * i] = rng.below(1 << 16)
    for i in range(records):
        addr = recs_base + 8 * RECORD_WORDS * i
        # 85% of links point into a hot set; 15% are cold.
        if rng.below(100) < 85:
            image[addr] = hot[rng.below(len(hot))]
        else:
            image[addr] = objs_base + 32 * rng.below(objects)
        for f in range(1, 4):
            image[addr + 8 * f] = rng.below(1 << 18)

    slice_spec = _build_slice(fork_pc=fork_inst.pc, obj_load_pc=obj_load.pc)

    return Workload(
        name="vortex",
        program=program,
        memory_image=image,
        region=records * 110,
        description="record validation near peak IPC",
        slices=(slice_spec,),
        problem_branch_pcs=frozenset(),
        problem_load_pcs=frozenset({obj_load.pc}),
        expectation=(
            "~no speedup: base IPC near peak makes slice execution's "
            "opportunity cost high and the covered load misses rarely "
            "(Section 6.2)"
        ),
    )


def _build_slice(fork_pc: int, obj_load_pc: int) -> SliceSpec:
    """The paper's 4-static-instruction prefetch-only vortex slice."""
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0xA000)
    asm.label("vx_slice")
    asm.comment("the NEXT record's object link")
    asm.ld("r1", "r21", 8 * RECORD_WORDS)  # r21 live-in
    pf_obj = asm.ld("r10", "r1")
    asm.halt()
    code = asm.build()

    return SliceSpec(
        name="vortex_link",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("vx_slice"),
        live_in_regs=(21,),
        prefetch_for={pf_obj.pc: obj_load_pc},
    )

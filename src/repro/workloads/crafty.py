"""crafty analog: bitboard scans with a data-dependent capture test.

crafty's problem instructions cluster in ``FirstOne``/``LastOne``-style
bit scans and in capture/quiet decisions on freshly computed attack
sets. The paper's footnote explains why crafty resisted slices: the
bit-scan work is compact (Alpha has dedicated instructions for it) and
the baseline IPC is high, so the opportunity cost of helper-thread
execution eats the benefit. Expect little or no speedup.

The slice here is the paper's crafty-style 7-instruction straight-line
slice covering the single capture branch.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.slices.spec import KillKind, KillSpec, PGISpec, SliceSpec
from repro.workloads.base import SLICE_CODE_BASE, Lcg, Workload


def build(scale: float = 1.0, seed: int = 1985) -> Workload:
    """Build the crafty bit-scan workload.

    At ``scale=1.0``: 2600 move evaluations over L1-resident bitboards,
    ~230k dynamic instructions at a high baseline IPC.
    """
    moves = max(int(2600 * scale), 40)

    asm = Assembler(base_pc=0x1000)
    boards_base = asm.data_space("boards", 1024)  # L1-resident
    movelist_base = asm.data_space("moves", moves)

    asm.li("r20", moves)
    asm.li("r21", movelist_base)
    asm.li("r22", boards_base)
    asm.li("r28", 0)

    asm.label("move_loop")
    asm.ld("r1", "r21")  # packed move descriptor
    asm.and_("r2", "r1", imm=0xFF8)
    asm.add("r2", "r2", rb="r22")
    attack_load = asm.ld("r3", "r2")  # attack bitboard (L1 hit)
    asm.comment("FirstOne: find lowest set bit by shifting (trip count")
    asm.comment("is data-dependent but the loop is tiny)")
    asm.li("r4", 0)
    asm.label("scan_loop")
    asm.and_("r5", "r3", imm=1)
    asm.bne("r5", "scan_done")
    asm.srl("r3", "r3", imm=1)
    asm.add("r4", "r4", imm=1)
    asm.bgt("r3", "scan_loop")
    asm.label("scan_done")
    asm.comment("capture test on the found square (unbiased)")
    asm.sra("r6", "r1", imm=12)
    asm.xor("r7", "r6", rb="r4")
    asm.and_("r7", "r7", imm=1)
    capture_branch = asm.bne("r7", "is_capture")
    asm.add("r28", "r28", rb="r4")
    asm.br("move_done")
    asm.label("is_capture")
    asm.xor("r28", "r28", rb="r6")
    asm.label("move_done")
    asm.comment("fork point for the NEXT move (score bookkeeping)")
    fork_inst = asm.sll("r8", "r28", imm=1)
    asm.xor("r28", "r28", rb="r8")
    asm.add("r9", "r4", rb="r6")
    asm.add("r28", "r28", rb="r9")
    asm.add("r21", "r21", imm=8)
    asm.sub("r20", "r20", imm=1)
    asm.bgt("r20", "move_loop")
    asm.halt()
    program = asm.build()

    rng = Lcg(seed)
    image = dict(program.data)
    for i in range(1024):
        image[boards_base + 8 * i] = rng.below(1 << 40) | 1 << rng.below(20)
    for i in range(moves):
        image[movelist_base + 8 * i] = rng.below(1 << 20)

    slice_spec = _build_slice(
        fork_pc=fork_inst.pc,
        boards_base=boards_base,
        capture_branch_pc=capture_branch.pc,
        slice_kill_pc=program.pc_of("move_done"),
    )

    return Workload(
        name="crafty",
        program=program,
        memory_image=image,
        region=moves * 90,
        description="bitboard scans with capture tests (high base IPC)",
        slices=(slice_spec,),
        problem_branch_pcs=frozenset({capture_branch.pc}),
        problem_load_pcs=frozenset(),
        expectation=(
            "little or no speedup: high base IPC makes slice execution "
            "expensive (the paper did not significantly improve crafty)"
        ),
    )


def _build_slice(
    fork_pc: int,
    boards_base: int,
    capture_branch_pc: int,
    slice_kill_pc: int,
) -> SliceSpec:
    """Capture-test slice for the next move (contains the scan loop)."""
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x9000)
    asm.label("cr_slice")
    asm.comment("the NEXT move (r21 still points at the current)")
    asm.ld("r1", "r21", 8)  # r21 live-in
    asm.and_("r2", "r1", imm=0xFF8)
    asm.add("r2", "r2", imm=boards_base)
    asm.ld("r3", "r2")
    asm.li("r4", 0)
    asm.label("cr_scan")
    asm.and_("r5", "r3", imm=1)
    asm.bne("r5", "cr_done")
    asm.srl("r3", "r3", imm=1)
    asm.add("r4", "r4", imm=1)
    back = asm.bgt("r3", "cr_scan")
    asm.label("cr_done")
    asm.sra("r6", "r1", imm=12)
    asm.xor("r7", "r6", rb="r4")
    asm.comment("PGI: capture parity")
    pgi_inst = asm.and_("r7", "r7", imm=1)
    asm.halt()
    code = asm.build()

    return SliceSpec(
        name="crafty_capture",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("cr_slice"),
        live_in_regs=(21,),
        pgis=(PGISpec(slice_pc=pgi_inst.pc, branch_pc=capture_branch_pc),),
        kills=(KillSpec(slice_kill_pc, KillKind.SLICE),),
        max_iterations=40,
        loop_back_pc=back.pc,
    )

"""repro — reproduction of "Execution-based Prediction Using Speculative
Slices" (Zilles & Sohi, ISCA 2001).

The package is layered bottom-up:

* :mod:`repro.isa` — a small Alpha-flavored RISC ISA and assembler.
* :mod:`repro.arch` — functional architecture (journaled state, executor).
* :mod:`repro.uarch` — the timing microarchitecture: caches, prefetcher,
  branch predictors, and the out-of-order SMT core of Table 1.
* :mod:`repro.slices` — the paper's contribution: speculative slices,
  the slice/PGI front-end tables, and the prediction correlator.
* :mod:`repro.workloads` — SPEC2000int-analog synthetic kernels.
* :mod:`repro.analysis` — problem-instruction profiling/classification
  and run characterization (Tables 2-4).
* :mod:`repro.harness` — experiment drivers that regenerate every table
  and figure in the paper's evaluation.
"""

__version__ = "1.0.0"

# Convenience top-level API: the pieces a downstream user starts from.
from repro.harness.runner import (  # noqa: E402
    run_baseline,
    run_perfect_sweep,
    run_triple,
    run_with_slices,
)
from repro.uarch.config import EIGHT_WIDE, FOUR_WIDE  # noqa: E402
from repro.uarch.core import Core  # noqa: E402

__all__ = [
    "Core",
    "EIGHT_WIDE",
    "FOUR_WIDE",
    "run_baseline",
    "run_perfect_sweep",
    "run_triple",
    "run_with_slices",
]

"""Seeded, fully deterministic random program generator.

``generate(seed, scale)`` produces a self-contained synthetic
:class:`~repro.workloads.base.Workload` exercising the behaviors the
execution tiers disagree about when they are wrong: random CFGs with
joins and loops, pointer chases over a generated memory image,
mixed-entropy conditional branches (data-dependent and
induction-periodic), register-indirect jumps through generated jump
tables, call/return pairs, and — for a fraction of seeds — a
speculative prefetch slice forked off the pointer chase, so the SMT
slice contexts are fuzzed too.

Determinism contract: the same ``(seed, scale)`` always yields a
byte-identical ``Program`` + ``Workload`` (pickle-equal across
processes). Everything is driven by the repo's own
:class:`~repro.workloads.base.Lcg`; no ambient randomness, no ordering
dependence on hashes.

Termination contract: every basic block begins by decrementing a fuel
register and exiting when it runs out, so the architecturally correct
path always HALTs — wrong paths get their wildness for free from
misprediction, which is exactly where tier divergence hides. All
correct-path memory accesses are mask-aligned into generated arrays;
wild addresses can only occur on wrong paths, where the simulator must
(and does) tolerate them.

Generation is two-pass: the first build is executed functionally to
measure the dynamic instruction count (which becomes the workload's
``region``), then a second, never-executed build from the same seed is
returned — compiled ``Instruction._exec`` closures are unpicklable, and
the fuzzer's worker pool needs picklable programs.
"""

from __future__ import annotations

from repro.arch.interpreter import Fault, run_functional
from repro.arch.memory import Memory
from repro.arch.state import ThreadState
from repro.isa.assembler import Assembler
from repro.slices.spec import SliceSpec
from repro.workloads.base import SLICE_CODE_BASE, Lcg, Workload

#: Workload-name prefix the registry dispatches on (`fuzz-0x2a`).
NAME_PREFIX = "fuzz-"

#: Power-of-two data array sizes (words); masks keep correct-path
#: accesses in bounds.
ARR_WORDS = 64
OUT_WORDS = 32
CHASE_WORDS = 32

# Fixed register roles. r16..r25 stay unused (wrong-path scratch in
# spirit); r26 is the link register, r31 reads as zero.
FUEL = 1
POOL = tuple(range(2, 10))
CHASE = 10
ADDR = 11
TMP = 12
ARR = 13
OUT = 14
IND = 15

_COND_BRANCHES = ("beq", "bne", "blt", "bge", "ble", "bgt")
_ALU_OPS = (
    "add", "sub", "and_", "or_", "xor", "sll", "srl", "sra",
    "cmpeq", "cmplt", "cmple", "cmpult",
)


class GenerationError(Exception):
    """A generated program violated its own termination contract."""


def seed_name(seed: int) -> str:
    """Canonical registry name for a fuzz seed (``fuzz-0x2a``)."""
    return f"{NAME_PREFIX}{seed:#x}"


def parse_seed(name: str) -> int:
    """Inverse of :func:`seed_name`; raises ``ValueError`` on mismatch."""
    if not name.startswith(NAME_PREFIX):
        raise ValueError(f"not a fuzz workload name: {name!r}")
    return int(name[len(NAME_PREFIX):], 0)


def _value(rng: Lcg) -> int:
    """A mixed-magnitude signed literal: small ints dominate, with
    occasional large positives/negatives to exercise 64-bit wrapping."""
    kind = rng.below(4)
    if kind == 0:
        return rng.below(16)
    if kind == 1:
        return rng.below(256) - 128
    if kind == 2:
        return rng.next()  # up to 48 bits
    return -(rng.next() >> rng.below(16)) - 1


class _Builder:
    """One deterministic assembly pass for a given seed."""

    def __init__(self, seed: int, scale: float):
        self.seed = seed
        self.scale = scale
        self.rng = Lcg(seed)
        self.asm = Assembler()
        self.chase_pcs: list[int] = []
        self.block_labels: list[str] = []
        self.jumptab_fixups: list[tuple[str, int, int]] = []
        self.n_tables = 0

    # -- data ----------------------------------------------------------

    def _data(self) -> None:
        rng, asm = self.rng, self.asm
        asm.data_words("arr", [_value(rng) for _ in range(ARR_WORDS)])
        asm.data_space("out", OUT_WORDS)
        base = asm.data_space("chase", CHASE_WORDS)
        # Single-cycle permutation: every chase word holds the address
        # of another chase word, so `ld CHASE, CHASE, 0` never escapes.
        order = list(range(CHASE_WORDS))
        for i in range(CHASE_WORDS - 1, 0, -1):
            j = rng.below(i + 1)
            order[i], order[j] = order[j], order[i]
        for pos, idx in enumerate(order):
            succ = order[(pos + 1) % CHASE_WORDS]
            asm.set_data_word("chase", idx, base + 8 * succ)
        self.chase_entry = base + 8 * order[0]

    # -- code ----------------------------------------------------------

    def _prologue(self, fuel: int) -> None:
        rng, asm = self.rng, self.asm
        asm.label("start")
        asm.entry("start")
        asm.li(FUEL, fuel)
        for reg in POOL:
            asm.li(reg, _value(rng))
        asm.li(IND, 0)
        asm.la(ARR, "arr")
        asm.la(OUT, "out")
        asm.li(CHASE, self.chase_entry)
        asm.br("b0")
        # Callee and exit live before the blocks so their PCs are known
        # when block bodies want them (indirect calls need a literal).
        asm.label("fn")
        asm.add(TMP, POOL[0], rb=POOL[1])
        asm.xor(TMP, TMP, imm=rng.below(64))
        asm.ret()
        self.fn_pc = asm._labels["fn"]
        asm.label("exit")
        asm.halt()

    def _body_op(self) -> None:
        rng, asm = self.rng, self.asm
        kind = rng.below(16)
        rd = POOL[rng.below(len(POOL))]
        ra = POOL[rng.below(len(POOL))]
        rb = POOL[rng.below(len(POOL))]
        if kind < 6:
            op = getattr(asm, _ALU_OPS[rng.below(len(_ALU_OPS))])
            if rng.bit():
                op(rd, ra, rb=rb)
            else:
                op(rd, ra, imm=_value(rng))
        elif kind < 8:  # masked load (either array, so stores are read back)
            words, base = (
                (ARR_WORDS, ARR) if rng.bit() else (OUT_WORDS, OUT)
            )
            asm.and_(ADDR, ra, imm=words - 1)
            asm.s8add(ADDR, ADDR, base)
            asm.ld(rd, ADDR, 0)
        elif kind < 10:  # masked store (either array — read-after-write
            # through memory is what exposes a leaked wrong-path store)
            words, base = (
                (ARR_WORDS, ARR) if rng.bit() else (OUT_WORDS, OUT)
            )
            asm.and_(ADDR, ra, imm=words - 1)
            asm.s8add(ADDR, ADDR, base)
            asm.st(rb, ADDR, 0)
        elif kind < 12:  # pointer chase step (+ fold address entropy)
            self.chase_pcs.append(asm.ld(CHASE, CHASE, 0).pc)
            if rng.bit():
                asm.xor(rd, rd, rb=CHASE)
        elif kind == 12:
            getattr(asm, ("cmoveq", "cmovne", "cmovlt", "cmovge")[
                rng.below(4)])(rd, ra, rb)
        elif kind == 13:
            if rng.bit():
                asm.mul(rd, ra, rb=rb)
            else:
                asm.div(rd, ra, rb=rb)
        elif kind == 14:
            asm.li(rd, _value(rng))
        else:  # call (direct 3:1 indirect) — returns, so not a terminator
            if rng.below(4):
                asm.call("fn")
            else:
                asm.li(ADDR, self.fn_pc)
                asm.callr(ADDR)

    def _terminator(self, n_blocks: int) -> None:
        rng, asm = self.rng, self.asm
        target = f"b{rng.below(n_blocks)}"
        kind = rng.below(8)
        if kind < 4:  # conditional: data-dependent or induction-periodic
            branch = getattr(asm, _COND_BRANCHES[rng.below(6)])
            if rng.bit():
                asm.and_(ADDR, IND, imm=rng.below(7) + 1)
                branch(ADDR, target)
            else:
                branch(POOL[rng.below(len(POOL))], target)
            # conditional ⇒ fallthrough into the next block (a CFG join)
        elif kind < 6:
            asm.br(target)
        else:  # register-indirect jump through a generated table
            size = 4 if rng.bit() else 8
            symbol = f"jt{self.n_tables}"
            self.n_tables += 1
            asm.data_space(symbol, size)
            for i in range(size):
                self.jumptab_fixups.append((symbol, i, rng.below(n_blocks)))
            src = IND if rng.bit() else POOL[rng.below(len(POOL))]
            asm.and_(ADDR, src, imm=size - 1)
            asm.li(TMP, asm.addr_of(symbol))
            asm.s8add(ADDR, ADDR, TMP)
            asm.ld(ADDR, ADDR, 0)
            asm.jr(ADDR)

    def _slice(self) -> tuple[SliceSpec, ...]:
        """Maybe attach a prefetch slice forked off the pointer chase."""
        rng = self.rng
        want = rng.below(5) < 2  # ~40% of seeds
        if not want or not self.chase_pcs:
            return ()
        sl = Assembler(base_pc=SLICE_CODE_BASE)
        sl.label("s")
        sl.entry("s")
        hops = 1 + rng.below(3)
        slice_ld_pcs = [sl.ld(CHASE, CHASE, 0).pc for _ in range(hops)]
        sl.halt()
        code = sl.build()
        spec = SliceSpec(
            name=f"{seed_name(self.seed)}-chase",
            fork_pc=self.chase_pcs[0],
            code=code,
            entry_pc=code.pc_of("s"),
            live_in_regs=(CHASE,),
            prefetch_for={
                pc: self.chase_pcs[i % len(self.chase_pcs)]
                for i, pc in enumerate(slice_ld_pcs)
            },
        )
        return (spec,)

    # -- assembly ------------------------------------------------------

    def build(self):
        rng, asm = self.rng, self.asm
        self._data()
        n_blocks = 4 + rng.below(8)
        fuel = max(12, round((140 + rng.below(120)) * self.scale))
        self._prologue(fuel)
        for i in range(n_blocks):
            asm.label(f"b{i}")
            asm.sub(FUEL, FUEL, imm=1)
            asm.ble(FUEL, "exit")
            asm.add(IND, IND, imm=1)
            for _ in range(2 + rng.below(6)):
                self._body_op()
            self._terminator(n_blocks)
        # A conditional terminator on the last block falls through here.
        asm.br("exit")
        for symbol, index, block in self.jumptab_fixups:
            asm.set_data_word(symbol, index, asm._labels[f"b{block}"])
        slices = self._slice()
        program = asm.build()
        return program, slices, fuel


def _measure(workload: Workload, fuel: int) -> int:
    """Dynamic instruction count to HALT (inclusive), functionally."""
    memory = Memory(workload.memory_image, journaling=False, normalized=True)
    state = ThreadState(
        memory, entry_pc=workload.program.entry_pc, journaling=False
    )
    cap = max(100_000, fuel * 64)
    executed = 0
    for _inst, result in run_functional(workload.program, state, cap):
        executed += 1
        if result.fault is Fault.HALT:
            return executed
    raise GenerationError(
        f"{workload.name} did not HALT within {cap} instructions"
    )


def _assemble(seed: int, scale: float, region: int) -> tuple[Workload, int]:
    program, slices, fuel = _Builder(seed, scale).build()
    workload = Workload(
        name=seed_name(seed),
        program=program,
        memory_image=dict(program.data),
        region=region,
        description=f"fuzz seed {seed:#x} @ scale {scale}",
        slices=slices,
        scale=scale,
    )
    return workload, fuel


def generate(seed: int, scale: float = 1.0) -> Workload:
    """Deterministically generate the workload for *seed*.

    Two-pass: measure the dynamic length on a throwaway build (its
    instructions acquire unpicklable exec closures), then return a
    pristine build with ``region`` set to the full dynamic run.
    """
    probe, fuel = _assemble(seed, scale, region=0)
    region = _measure(probe, fuel)
    final, _ = _assemble(seed, scale, region=region)
    return final

"""Automatic shrinking of a divergent seed to a minimal repro.

Classic greedy delta debugging, adapted to a fixed address space:
instructions are *replaced with NOPs* rather than deleted, so every PC,
label, branch target, and generated jump-table entry stays valid while
the program shrinks. Passes, applied to a fixpoint:

1. drop the slice specs (most divergences don't need the SMT contexts);
2. ddmin over instructions — NOP out binary-halving chunks, keeping any
   chunk whose removal still diverges;
3. operand simplification — per surviving instruction, try ``imm -> 0``
   and source registers -> ``r31`` (the zero register);
4. ddmin over the data image — drop memory words.

A candidate is *valid* only if its architecturally correct path still
HALTs within a functional-run budget (NOPing the fuel decrement makes
the program non-terminating, so it is rejected here), and is *kept*
only if :func:`~repro.fuzz.diff.check_workload` still reports a
divergence. The measured ``region`` is recomputed per candidate, so
every accepted repro is a well-formed workload in its own right.

Soundness contract (tested): the result of a shrink still diverges, is
never larger than its input, and shrinking a non-divergent workload is
a no-op.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.arch.interpreter import Fault, run_functional
from repro.arch.memory import Memory
from repro.arch.state import ThreadState
from repro.fuzz.diff import Divergence, check_workload
from repro.isa.instruction import ZERO_REG, Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.uarch.config import FOUR_WIDE, MachineConfig
from repro.workloads.base import Workload


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    workload: Workload
    #: Divergence of the final (possibly shrunk) workload; ``None``
    #: when the input did not diverge in the first place (no-op).
    divergence: Divergence | None
    original_size: int
    shrunk_size: int
    #: Differential checks spent (the shrink budget's unit).
    checks: int

    @property
    def shrunk(self) -> bool:
        return self.shrunk_size < self.original_size


def workload_size(workload: Workload) -> int:
    """Shrink metric: live instructions plus data-image words."""
    live = sum(
        1
        for inst in workload.program.instructions
        if inst.op is not Opcode.NOP
    )
    return live + len(workload.memory_image)


def _rebuild_program(base: Program, insts, data: dict) -> Program:
    return Program(
        instructions=[copy.copy(inst) for inst in insts],
        base_pc=base.base_pc,
        data=dict(data),
        labels=dict(base.labels),
        data_symbols=dict(base.data_symbols),
        entry_pc=base.entry_pc,
    )


def _halting_region(program: Program, cap: int) -> int | None:
    """Dynamic length to HALT on the correct path, or ``None``."""
    memory = Memory(program.data, journaling=False, normalized=True)
    state = ThreadState(memory, entry_pc=program.entry_pc, journaling=False)
    executed = 0
    for _inst, result in run_functional(program, state, cap):
        executed += 1
        if result.fault is Fault.HALT:
            return executed
    return None


def shrink(
    workload: Workload,
    config: MachineConfig = FOUR_WIDE,
    max_checks: int = 600,
) -> ShrinkResult:
    """Shrink *workload* while it keeps diverging; see module docstring."""
    initial = check_workload(workload, config)
    checks = 1
    size = workload_size(workload)
    if initial is None:
        return ShrinkResult(workload, None, size, size, checks)

    current = workload
    divergence = initial
    cap = max(50_000, workload.region * 4)

    def attempt(insts, data, slices):
        """Validate + recheck one candidate; returns it if it still
        diverges, else ``None``."""
        nonlocal checks, current, divergence
        if checks >= max_checks:
            return False
        program = _rebuild_program(current.program, insts, data)
        region = _halting_region(program, cap)
        if region is None:
            return False
        checks += 1
        candidate = Workload(
            name=current.name,
            program=program,
            memory_image=dict(data),
            region=region,
            description=current.description,
            slices=slices,
            scale=current.scale,
        )
        found = check_workload(candidate, config)
        if found is None:
            return False
        current, divergence = candidate, found
        return True

    # Pass 1: the slice specs.
    if current.slices:
        attempt(current.program.instructions, current.program.data, ())

    improved = True
    while improved and checks < max_checks:
        improved = False

        # Pass 2: ddmin NOPing over live instructions.
        def live_indices():
            return [
                i
                for i, inst in enumerate(current.program.instructions)
                if inst.op not in (Opcode.NOP, Opcode.HALT)
            ]

        indices = live_indices()
        chunk = max(1, len(indices) // 2)
        while chunk >= 1 and checks < max_checks:
            pos = 0
            while pos < len(indices) and checks < max_checks:
                subset = indices[pos:pos + chunk]
                insts = list(current.program.instructions)
                for i in subset:
                    insts[i] = Instruction(Opcode.NOP, pc=insts[i].pc)
                if attempt(insts, current.program.data, current.slices):
                    improved = True
                    indices = live_indices()
                else:
                    pos += chunk
            chunk //= 2

        # Pass 3: operand simplification on what survived.
        for i in live_indices():
            if checks >= max_checks:
                break
            inst = current.program.instructions[i]
            trials = []
            if inst.imm not in (None, 0):
                trials.append(("imm", 0))
            if inst.rb is not None and inst.rb != ZERO_REG:
                trials.append(("rb", ZERO_REG))
            if inst.ra is not None and inst.ra != ZERO_REG:
                trials.append(("ra", ZERO_REG))
            for attr, value in trials:
                insts = list(current.program.instructions)
                patched = copy.copy(insts[i])
                setattr(patched, attr, value)
                insts[i] = patched
                if attempt(insts, current.program.data, current.slices):
                    improved = True

        # Pass 4: ddmin over the data image.
        addrs = sorted(current.memory_image)
        chunk = max(1, len(addrs) // 2)
        while chunk >= 1 and checks < max_checks:
            pos = 0
            while pos < len(addrs) and checks < max_checks:
                subset = set(addrs[pos:pos + chunk])
                data = {
                    a: v
                    for a, v in current.program.data.items()
                    if a not in subset
                }
                if attempt(
                    current.program.instructions, data, current.slices
                ):
                    improved = True
                    addrs = sorted(current.memory_image)
                else:
                    pos += chunk
            chunk //= 2

    return ShrinkResult(
        current, divergence, size, workload_size(current), checks
    )

"""Minimal-repro corpus: persistence + replay for divergent seeds.

Cases live under ``<cache root>/fuzz/`` (``REPRO_CACHE_DIR`` or
``.repro_cache``, same resolution as the run cache) as one
self-contained JSON *replay file* per seed: the full shrunk program
(instructions, labels, data image, slices), the recorded divergence
classification, and the shrink provenance. JSON rather than pickle so a
repro is diffable, reviewable, and committable into ``tests/`` as a
regression fixture — promoted cases in ``tests/fuzz/corpus/`` replay
through exactly this module.

Replaying rebuilds the workload from the file and re-runs the full
differential check, so a case's verdict always reflects the *current*
tree: a fixed bug replays clean, a regression resurfaces it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.fuzz.diff import Divergence, check_workload
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.slices.spec import SliceSpec
from repro.workloads.base import Workload

#: Bump when the case schema changes; loaders reject other versions.
SCHEMA_VERSION = 1

_SUFFIX = ".repro.json"


def corpus_root(cache_root: str | os.PathLike | None = None) -> Path:
    """Corpus directory (not created until a case is saved)."""
    if cache_root is None:
        cache_root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    return Path(cache_root) / "fuzz"


def _encode_program(program: Program) -> dict:
    return {
        "base_pc": program.base_pc,
        "entry_pc": program.entry_pc,
        "instructions": [
            [
                inst.op.name,
                inst.rd,
                inst.ra,
                inst.rb,
                inst.imm,
                inst.target,
                inst.pc,
            ]
            for inst in program.instructions
        ],
        "labels": dict(program.labels),
        "data_symbols": dict(program.data_symbols),
        "data": [[addr, value] for addr, value in sorted(program.data.items())],
    }


def _decode_program(payload: dict) -> Program:
    return Program(
        instructions=[
            Instruction(
                op=Opcode[op],
                rd=rd,
                ra=ra,
                rb=rb,
                imm=imm,
                target=target,
                pc=pc,
            )
            for op, rd, ra, rb, imm, target, pc in payload["instructions"]
        ],
        base_pc=payload["base_pc"],
        data={addr: value for addr, value in payload["data"]},
        labels=dict(payload["labels"]),
        data_symbols=dict(payload["data_symbols"]),
        entry_pc=payload["entry_pc"],
    )


def _encode_slice(spec: SliceSpec) -> dict:
    return {
        "name": spec.name,
        "fork_pc": spec.fork_pc,
        "entry_pc": spec.entry_pc,
        "live_in_regs": list(spec.live_in_regs),
        "prefetch_for": [
            [slice_pc, main_pc]
            for slice_pc, main_pc in sorted(spec.prefetch_for.items())
        ],
        "code": _encode_program(spec.code),
    }


def _decode_slice(payload: dict) -> SliceSpec:
    return SliceSpec(
        name=payload["name"],
        fork_pc=payload["fork_pc"],
        code=_decode_program(payload["code"]),
        entry_pc=payload["entry_pc"],
        live_in_regs=tuple(payload["live_in_regs"]),
        prefetch_for={
            slice_pc: main_pc
            for slice_pc, main_pc in payload["prefetch_for"]
        },
    )


def save_case(
    workload: Workload,
    divergence: Divergence,
    original_size: int | None = None,
    cache_root: str | os.PathLike | None = None,
) -> Path:
    """Persist one (possibly shrunk) repro; returns the replay file."""
    from repro.fuzz.shrink import workload_size

    root = corpus_root(cache_root)
    root.mkdir(parents=True, exist_ok=True)
    size = workload_size(workload)
    case = {
        "schema": SCHEMA_VERSION,
        "seed": divergence.seed,
        "scale": divergence.scale,
        "name": workload.name,
        "region": workload.region,
        "divergence": {
            "tier_a": divergence.tier_a,
            "tier_b": divergence.tier_b,
            "kind": divergence.kind,
            "detail": divergence.detail,
        },
        "size": size,
        "original_size": original_size if original_size is not None else size,
        "program": _encode_program(workload.program),
        "slices": [_encode_slice(spec) for spec in workload.slices],
    }
    path = root / f"{divergence.seed:#x}{_SUFFIX}"
    path.write_text(json.dumps(case, indent=1, sort_keys=True) + "\n")
    return path


def load_case(path: str | os.PathLike) -> dict:
    """Load and schema-check one replay file."""
    case = json.loads(Path(path).read_text())
    schema = case.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: corpus schema {schema!r}, expected {SCHEMA_VERSION}"
        )
    return case


def case_workload(case: dict) -> Workload:
    """Rebuild the runnable workload recorded in *case*."""
    return Workload(
        name=case["name"],
        program=_decode_program(case["program"]),
        memory_image={
            addr: value for addr, value in case["program"]["data"]
        },
        region=case["region"],
        description=f"fuzz corpus repro (seed {case['seed']:#x})",
        slices=tuple(_decode_slice(s) for s in case["slices"]),
        scale=case["scale"],
    )


def replay(path: str | os.PathLike) -> Divergence | None:
    """Re-run the differential check for a stored case against the
    current tree. ``None`` means the recorded bug no longer reproduces."""
    case = load_case(path)
    return check_workload(case_workload(case), seed=case["seed"])


def case_paths(cache_root: str | os.PathLike | None = None) -> list[Path]:
    root = corpus_root(cache_root)
    if not root.is_dir():
        return []
    return sorted(root.glob(f"*{_SUFFIX}"))


def list_cases(cache_root: str | os.PathLike | None = None) -> list[dict]:
    """Summaries for ``repro fuzz ls``, one dict per stored case."""
    summaries = []
    for path in case_paths(cache_root):
        case = load_case(path)
        d = case["divergence"]
        summaries.append(
            {
                "file": str(path),
                "seed": case["seed"],
                "scale": case["scale"],
                "klass": f"{d['kind']}:{d['tier_a']}/{d['tier_b']}",
                "size": case["size"],
                "original_size": case["original_size"],
                "region": case["region"],
            }
        )
    return summaries


def clear(cache_root: str | os.PathLike | None = None) -> int:
    """Delete every stored case; returns how many were removed."""
    paths = case_paths(cache_root)
    for path in paths:
        path.unlink()
    return len(paths)

"""N-way differential cross-check of one workload across all tiers.

The oracle is the functional interpreter: correct paths only, no
timing, trivially auditable. Every detailed configuration must commit
exactly the reference's dynamic instruction sequence with the same
per-instruction observables (the commit-tap record, see
:mod:`repro.uarch.commitlog`), and configurations that only differ in
*simulation strategy* — stepping vs. event-driven scheduling, fused
vs. per-instruction execution — must additionally produce bit-identical
``RunStats`` up to :data:`~repro.uarch.stats.SIMULATOR_META_FIELDS`.

Tier matrix per workload (slice variants run twice, with and without
the workload's slices — slices prefetch, so the architecture must not
move):

========== ===========================================================
tier        what runs
========== ===========================================================
interp      ``run_functional`` — the reference commit stream
step        detailed core, stepping scheduler, per-instruction
event       detailed core, event-driven scheduler, per-instruction
step-fused  stepping scheduler, fused basic blocks
event-fused event-driven scheduler, fused basic blocks
ff          ``fast_forward`` warming executor, state checked at depth K
snapshot    detailed run resumed from the depth-K snapshot
chained     ``iter_chain`` members vs straight builds + a detailed
            window (warmup discard + measured region) per member
========== ===========================================================

Divergences are classified by the *first* disagreeing tier pair in
this fixed order, so a given bug always produces the same class — the
shrinker and the corpus key on it.

Everything here runs against in-memory stores
(``SnapshotStore(enabled=False)``) so fuzzing never touches (or
depends on) the on-disk snapshot cache.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.arch.interpreter import Fault, run_functional
from repro.errors import SimulationError
from repro.arch.memory import Memory
from repro.arch.state import ThreadState
from repro.harness.fastforward import (
    SnapshotStore,
    fast_forward,
    iter_chain,
    snapshot_digest,
)
from repro.uarch.commitlog import attach_commit_tap, first_mismatch
from repro.uarch.config import FOUR_WIDE, MachineConfig
from repro.uarch.core import Core
from repro.uarch.stats import SIMULATOR_META_FIELDS
from repro.workloads.base import Workload

#: Detailed full-run tiers, in classification order.
DETAILED_TIERS = (
    ("step", dict(event_driven=False, fused_blocks=False)),
    ("event", dict(event_driven=True, fused_blocks=False)),
    ("step-fused", dict(event_driven=False, fused_blocks=True)),
    ("event-fused", dict(event_driven=True, fused_blocks=True)),
)


@dataclass(frozen=True)
class Divergence:
    """One confirmed disagreement between two tiers. Picklable, so it
    survives the worker pool and the corpus."""

    seed: int
    scale: float
    #: First disagreeing tier pair, e.g. ``("interp", "event-fused")``.
    tier_a: str
    tier_b: str
    #: ``stream`` (commit records), ``stats`` (RunStats fields),
    #: ``state`` (architectural state at a fast-forward depth), or
    #: ``crash`` (a tier raised/deadlocked where the oracle halted).
    kind: str
    detail: str

    @property
    def klass(self) -> str:
        """Stable classification label (``stream:interp/event-fused``)."""
        return f"{self.kind}:{self.tier_a}/{self.tier_b}"

    def __str__(self) -> str:
        return f"seed {self.seed:#x} [{self.klass}] {self.detail}"


def run_reference(workload: Workload):
    """Functional oracle run: ``(records, states)``.

    *records* is the full commit stream as :data:`CommitRecord` tuples;
    *states* maps each requested depth (``region // 3`` and the chain
    depths) to ``(pc, regs, memory)`` for fast-forward cross-checks.
    """
    memory = Memory(workload.memory_image, journaling=False, normalized=True)
    state = ThreadState(
        memory, entry_pc=workload.program.entry_pc, journaling=False
    )
    wanted = set(_check_depths(workload))
    records = []
    states = {}
    if 0 in wanted:
        states[0] = _arch_state(state)
    for inst, result in run_functional(
        workload.program, state, workload.region + 1
    ):
        records.append(
            (inst.pc, result.next_pc, result.value, result.addr,
             result.store_value)
        )
        if len(records) in wanted:
            states[len(records)] = _arch_state(state)
        if result.fault is Fault.HALT:
            break
    return records, states


def _arch_state(state) -> tuple[int, tuple, tuple]:
    return (
        state.pc,
        tuple(state.regs.values()),
        tuple(sorted(state.memory.snapshot().items())),
    )


def _snapshot_state(snapshot) -> tuple[int, tuple, tuple]:
    return (
        snapshot.pc,
        tuple(snapshot.regs),
        tuple(sorted(snapshot.memory_words.items())),
    )


def _check_depths(workload: Workload) -> list[int]:
    """Fast-forward depths worth checking for this workload's length."""
    region = workload.region
    depths = []
    if region >= 30:
        depths.append(region // 3)
    if region >= 90:
        depths.extend([region // 4, region // 2])
    return depths


def _stream_detail(name: str, got, want) -> str:
    i = first_mismatch(got, want)
    a = got[i] if i is not None and i < len(got) else "<end>"
    b = want[i] if i is not None and i < len(want) else "<end>"
    return (
        f"commit streams disagree at index {i} "
        f"(lengths {len(got)}/{len(want)}): {name}={a} vs reference={b}"
    )


def _arch_stats(stats) -> dict:
    return {
        k: v
        for k, v in asdict(stats).items()
        if k not in SIMULATOR_META_FIELDS
    }


def _detailed_run(
    workload: Workload,
    config: MachineConfig,
    slices: tuple,
    tier_opts: dict,
    snapshot=None,
    warmup: int = 0,
    region: int | None = None,
):
    """One tapped detailed run: ``(records, stats)``."""
    core = Core(
        workload.program,
        config,
        slices=slices,
        memory_image=workload.memory_image,
        memory_normalized=True,
        region=workload.region if region is None else region,
        warmup=warmup,
        snapshot=snapshot,
        workload_name=workload.name,
        **tier_opts,
    )
    sink = attach_commit_tap(core)
    stats = core.run()
    return sink, stats


def check_workload(
    workload: Workload,
    config: MachineConfig = FOUR_WIDE,
    seed: int | None = None,
) -> Divergence | None:
    """Cross-check one workload across the full tier matrix.

    Returns the first divergence in classification order, or ``None``
    when every tier agrees. *seed* labels the divergence (falls back to
    parsing the workload name, then -1).
    """
    if seed is None:
        from repro.fuzz.gen import parse_seed

        try:
            seed = parse_seed(workload.name)
        except ValueError:
            seed = -1

    def diverged(tier_a, tier_b, kind, detail):
        return Divergence(
            seed=seed,
            scale=workload.scale,
            tier_a=tier_a,
            tier_b=tier_b,
            kind=kind,
            detail=detail,
        )

    reference, ref_states = run_reference(workload)

    def run_tier(name, *run_args, **run_kwargs):
        """A detailed tier that crashes or deadlocks where the oracle
        halted cleanly is itself a divergence, not an infrastructure
        failure — classify it so the shrinker can chase it."""
        try:
            return _detailed_run(workload, *run_args, **run_kwargs), None
        except SimulationError as exc:
            return None, diverged(
                "interp", name, "crash", f"{type(exc).__name__}: {exc}"
            )

    # -- detailed full-run grid, with and without slices ---------------
    slice_settings = [("base", ())]
    if workload.slices:
        slice_settings.append(("slice", tuple(workload.slices)))
    for setting, slices in slice_settings:
        baseline = None
        for tier, opts in DETAILED_TIERS:
            name = tier if setting == "base" else f"{tier}+slice"
            run, crashed = run_tier(name, config, slices, opts)
            if crashed is not None:
                return crashed
            records, stats = run
            if records != reference:
                return diverged(
                    "interp", name, "stream",
                    _stream_detail(name, records, reference),
                )
            arch = _arch_stats(stats)
            if baseline is None:
                baseline = (name, arch)
            elif arch != baseline[1]:
                fields = sorted(
                    k for k in arch if arch[k] != baseline[1][k]
                )
                return diverged(
                    baseline[0], name, "stats",
                    f"RunStats fields disagree: {fields}",
                )

    # -- functional fast-forward state at depth K ----------------------
    store = SnapshotStore(enabled=False)
    depths = _check_depths(workload)
    if depths:
        k = depths[0]
        snap = fast_forward(workload, config, k)
        if snap.executed != k or _snapshot_state(snap) != ref_states[k]:
            return diverged(
                "interp", "ff", "state",
                f"fast-forward state at depth {k} disagrees with the "
                f"functional oracle (executed={snap.executed})",
            )

        # -- detailed run resumed from the snapshot --------------------
        run, crashed = run_tier(
            "snapshot", config, (), dict(DETAILED_TIERS[3][1]),
            snapshot=snap, region=workload.region - k,
        )
        if crashed is not None:
            return crashed
        records, _ = run
        if records != reference[k:]:
            return diverged(
                "interp", "snapshot", "stream",
                _stream_detail("snapshot", records, reference[k:]),
            )

    # -- chained multi-region sampling vs straight-through -------------
    if len(depths) == 3:
        chain_depths = depths[1:]
        for depth, (member, _hit) in zip(
            chain_depths,
            iter_chain(workload, config, chain_depths, store=store),
        ):
            straight = fast_forward(workload, config, depth)
            if snapshot_digest(member) != snapshot_digest(straight):
                return diverged(
                    "chained", "ff", "state",
                    f"chain member at depth {depth} != straight-through "
                    f"snapshot of the same depth",
                )
            if _snapshot_state(member) != ref_states[depth]:
                return diverged(
                    "interp", "chained", "state",
                    f"chain member architectural state at depth {depth} "
                    f"disagrees with the functional oracle",
                )
            warmup = min(24, (workload.region - depth) // 4)
            sample = min(300, workload.region - depth - warmup)
            run, crashed = run_tier(
                f"chained@{depth}", config, (), dict(DETAILED_TIERS[1][1]),
                snapshot=member, warmup=warmup, region=sample,
            )
            if crashed is not None:
                return crashed
            records, _ = run
            window = reference[depth:depth + warmup + sample]
            if records != window:
                return diverged(
                    "interp", "chained", "stream",
                    _stream_detail(f"chained@{depth}", records, window),
                )

    return None


def check_seed(
    seed: int, scale: float = 1.0, config: MachineConfig = FOUR_WIDE
) -> Divergence | None:
    """Generate the workload for *seed* and cross-check it."""
    from repro.fuzz.gen import generate

    return check_workload(generate(seed, scale), config, seed=seed)

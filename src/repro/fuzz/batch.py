"""Seed-batch fan-out: run many differential checks in parallel.

Reuses the harness pool executor (:func:`_execute_pooled`) — the same
retry / timeout / broken-pool recovery discipline every experiment
matrix gets — with a fuzz-specific entry point. A worker receives only
``(seed, scale)``; it regenerates the workload locally (generation is
deterministic, and compiled programs are unpicklable anyway) and
returns the picklable :class:`~repro.fuzz.diff.Divergence` or ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fuzz.diff import Divergence, check_seed
from repro.harness.parallel import (
    MatrixReport,
    _execute_pooled,
    _resolve_retries,
    _resolve_timeout,
    resolve_jobs,
)


@dataclass(frozen=True)
class _FuzzTask:
    """One seed check: hashable + picklable pool item.

    ``workload`` / ``mode`` satisfy the pool executor's logging
    contract (what :class:`RunRequest` provides for matrix runs).
    """

    seed: int
    scale: float

    @property
    def workload(self) -> str:
        from repro.fuzz.gen import seed_name

        return seed_name(self.seed)

    @property
    def mode(self) -> str:
        return "fuzz"


def _fuzz_entry(task: _FuzzTask, attempt: int, fault_plan) -> Divergence | None:
    """Pool worker: apply any planned fault, then check one seed."""
    if fault_plan is not None:
        fault_plan.perturb(task, attempt)
    return check_seed(task.seed, task.scale)


@dataclass
class FuzzReport:
    """Outcome of one seed batch."""

    scale: float
    checked: list[int]
    divergences: list[Divergence]
    #: ``(seed, error)`` for checks that failed to complete (crash /
    #: timeout after retries) — holes, not verdicts.
    skipped: list[tuple[int, str]]

    @property
    def clean(self) -> bool:
        return not self.divergences and not self.skipped


def run_fuzz_batch(
    seeds,
    scale: float = 1.0,
    jobs: int | None = None,
    timeout: float | None = None,
    retries: int | None = None,
    fault_plan=None,
) -> FuzzReport:
    """Differentially check every seed in *seeds*.

    Divergences are findings, not failures: a seed whose check
    *completes* with a divergence resolves normally and is reported in
    ``FuzzReport.divergences``. Only checks that cannot complete
    (worker crash / timeout after retries) land in ``skipped`` —
    matching the matrix harness's ``on_error="skip"`` discipline, so
    one wedged seed never discards the rest of the batch.
    """
    tasks = [_FuzzTask(seed, scale) for seed in dict.fromkeys(seeds)]
    timeout = _resolve_timeout(timeout)
    retries = _resolve_retries(retries)
    workers = min(resolve_jobs(jobs), max(len(tasks), 1))

    divergences: list[Divergence] = []
    skipped: list[tuple[int, str]] = []

    if tasks and (workers > 1 or timeout is not None):
        outcomes = _execute_pooled(
            tasks,
            workers,
            timeout=timeout,
            retries=retries,
            on_error="skip",
            backoff_base=0.05,
            fault_plan=fault_plan,
            report=MatrixReport(),
            entry=_fuzz_entry,
        )
        for task in tasks:
            outcome = outcomes[task]
            if outcome.status == "skipped":
                skipped.append((task.seed, outcome.error or "unknown"))
            elif outcome.stats is not None:
                divergences.append(outcome.stats)
    else:
        for task in tasks:
            try:
                found = _fuzz_entry(task, 0, fault_plan)
            except Exception as exc:  # noqa: BLE001 — batch boundary
                skipped.append((task.seed, str(exc)))
                continue
            if found is not None:
                divergences.append(found)

    return FuzzReport(
        scale=scale,
        checked=[t.seed for t in tasks],
        divergences=divergences,
        skipped=skipped,
    )

"""Differential workload fuzzer.

Seeded random programs over :mod:`repro.isa`, cross-checked bit-for-bit
across every execution tier, with automatic shrinking of divergent
seeds to minimal repros. See DESIGN.md §7 for the methodology.
"""

from repro.fuzz.diff import Divergence, check_seed, check_workload
from repro.fuzz.gen import generate

__all__ = ["Divergence", "check_seed", "check_workload", "generate"]
